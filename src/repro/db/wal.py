"""Write-ahead logging and crash recovery for the mini database.

The paper's transaction model (Section 2) takes strict two-phase locking
because of *recovery*: "a transaction is a sequence of database
operations which is atomic with respect to the recovery" [13].  This
module completes that story for the db substrate: a write-ahead log with
before/after images, a crash simulation, and redo/undo restart recovery
(ARIES-lite, record-granular, no pages/LSNs — strict 2PL means no dirty
reads, so history replay + loser undo is exact).

Log record kinds::

    ("begin",  tid)
    ("write",  tid, table, key, before, after, existed)
    ("commit", tid)
    ("abort",  tid)

The log itself is an append-only list standing in for stable storage,
serializable to JSON-lines for real files.  Recovery:

1. **Analysis** — scan for transactions with ``begin`` but neither
   ``commit`` nor ``abort`` (the losers).
2. **Redo** — replay every write in log order (repeating history,
   including losers' writes — exactness over cleverness).  An ``abort``
   record applies its transaction's undo *at that point in history*:
   the in-memory rollback happened before anything logged later, so a
   later committed write to the same key must not be clobbered.
3. **Undo** — walk in-flight losers' writes backwards restoring
   before-images, then append their ``abort`` records (so a crash
   during recovery is also recoverable).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple


@dataclass(frozen=True)
class LogRecord:
    """One durable log entry."""

    kind: str  # begin | write | commit | abort
    tid: int
    table: Optional[str] = None
    key: Any = None
    before: Any = None
    after: Any = None
    existed: bool = False

    def to_json(self) -> str:
        return json.dumps(
            {
                "kind": self.kind,
                "tid": self.tid,
                "table": self.table,
                "key": self.key,
                "before": self.before,
                "after": self.after,
                "existed": self.existed,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "LogRecord":
        data = json.loads(text)
        return cls(**data)


class WriteAheadLog:
    """Append-only log; appended records are durable by definition."""

    def __init__(self) -> None:
        self._records: List[LogRecord] = []

    def append(self, record: LogRecord) -> None:
        self._records.append(record)

    def log_begin(self, tid: int) -> None:
        self.append(LogRecord("begin", tid))

    def log_load(self, table: str, key: Any, value: Any) -> None:
        """Initial (pre-transactional) table contents; treated as
        committed by recovery."""
        self.append(
            LogRecord("load", 0, table, key, None, value, False)
        )

    def log_write(
        self,
        tid: int,
        table: str,
        key: Any,
        before: Any,
        after: Any,
        existed: bool,
    ) -> None:
        self.append(
            LogRecord("write", tid, table, key, before, after, existed)
        )

    def log_create(self, table: str) -> None:
        """Table creation (so empty tables survive recovery)."""
        self.append(LogRecord("create", 0, table))

    def log_commit(self, tid: int) -> None:
        self.append(LogRecord("commit", tid))

    def log_abort(self, tid: int) -> None:
        self.append(LogRecord("abort", tid))

    def records(self) -> List[LogRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    # -- persistence ------------------------------------------------------

    def to_jsonl(self) -> str:
        return "\n".join(record.to_json() for record in self._records)

    @classmethod
    def from_jsonl(cls, text: str) -> "WriteAheadLog":
        log = cls()
        for line in text.splitlines():
            if line.strip():
                log.append(LogRecord.from_json(line))
        return log


def analyze(log: WriteAheadLog) -> Tuple[Set[int], Set[int]]:
    """``(winners, losers)``: committed vs in-flight at crash time."""
    begun: Set[int] = set()
    ended: Set[int] = set()
    winners: Set[int] = set()
    for record in log.records():
        if record.kind == "begin":
            begun.add(record.tid)
        elif record.kind == "commit":
            winners.add(record.tid)
            ended.add(record.tid)
        elif record.kind == "abort":
            ended.add(record.tid)
    return winners, begun - ended


def _undo_write(tables: Dict[str, Dict[Any, Any]], record: LogRecord) -> None:
    data = tables.setdefault(record.table, {})
    if record.existed:
        data[record.key] = record.before
    else:
        data.pop(record.key, None)


def recover(
    log: WriteAheadLog,
) -> Dict[str, Dict[Any, Any]]:
    """Rebuild the table contents from the log alone.

    Returns the recovered ``{table: {key: value}}`` state; appends abort
    records for the undone losers so the log records their fate.

    Aborted transactions wrote no compensation records, so only the
    original before-images in the log can reverse them — but that undo
    must be applied at the ``abort`` record's position in the replay,
    not at the end: the in-memory rollback completed before anything
    logged later, so the freed key may legitimately be rewritten (and
    committed) afterwards.  In-flight losers hold their X locks to the
    crash, so their writes are always the newest on their keys and are
    undone last, newest first.  Applying aborts in replay order is also
    what makes recovery idempotent: the abort records appended below
    undo the same writes at the same point on a second pass.
    """
    _, losers = analyze(log)

    tables: Dict[str, Dict[Any, Any]] = {}
    # Writes not yet resolved by a commit or abort record, per tid.
    pending: Dict[int, List[LogRecord]] = {}
    # Redo: repeat history (initial loads included), applying each
    # abort's rollback where it happened.
    for record in log.records():
        if record.kind == "create":
            tables.setdefault(record.table, {})
        elif record.kind == "load":
            tables.setdefault(record.table, {})[record.key] = record.after
        elif record.kind == "write":
            tables.setdefault(record.table, {})[record.key] = record.after
            pending.setdefault(record.tid, []).append(record)
        elif record.kind == "commit":
            pending.pop(record.tid, None)
        elif record.kind == "abort":
            for write in reversed(pending.pop(record.tid, [])):
                _undo_write(tables, write)

    # Undo the in-flight losers, newest write first.
    for tid in sorted(pending):
        for write in reversed(pending[tid]):
            _undo_write(tables, write)

    for tid in sorted(losers):
        log.log_abort(tid)
    return tables
