"""A recoverable database: the mini database plus write-ahead logging.

:class:`RecoverableDatabase` logs every state change through
:class:`~repro.db.wal.WriteAheadLog` at the correct points:

* table creation and initial rows as ``create``/``load`` records;
* ``begin`` on first write of a transaction (read-only transactions
  never touch the log);
* each write *after locking and before mutation* (the write-ahead rule,
  via the :meth:`Database._on_write` hook);
* ``commit`` **before** any lock is released — the durability point;
* ``abort`` after the rollback.

``simulate_crash()`` models losing all volatile state: it returns a
fresh :class:`RecoverableDatabase` rebuilt purely from the log by
redo/undo restart recovery — committed effects survive, in-flight
transactions vanish.  Strict 2PL (enforced by the lock manager) is what
makes this sound: no transaction ever reads or overwrites another's
uncommitted data.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set

from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from .database import Database
from .wal import WriteAheadLog, recover


class RecoverableDatabase(Database):
    """Database with write-ahead logging and restart recovery."""

    def __init__(
        self,
        name: str = "db",
        transactions: Optional[TransactionManager] = None,
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        super().__init__(name=name, transactions=transactions)
        self.wal = wal if wal is not None else WriteAheadLog()
        self._logged_begin: Set[int] = set()

    # -- logging hooks -----------------------------------------------------

    def create_table(self, table, rows=None) -> None:
        super().create_table(table, rows)
        self.wal.log_create(table)
        for key, value in (rows or {}).items():
            self.wal.log_load(table, key, value)

    def _on_write(
        self, tid: int, table: str, key: Any, before: Any, existed: bool,
        value: Any,
    ) -> None:
        if tid not in self._logged_begin:
            self.wal.log_begin(tid)
            self._logged_begin.add(tid)
        self.wal.log_write(tid, table, key, before, value, existed)

    def commit(self, txn: Transaction) -> None:
        # Durability point: the commit record hits the log before any
        # lock is released.
        if txn.tid in self._logged_begin:
            self.wal.log_commit(txn.tid)
            self._logged_begin.discard(txn.tid)
        super().commit(txn)

    def abort(self, txn: Transaction, reason: str = "user abort") -> None:
        super().abort(txn, reason)
        if txn.tid in self._logged_begin:
            self.wal.log_abort(txn.tid)
            self._logged_begin.discard(txn.tid)

    def rollback(self, tid: int) -> None:
        had_undo = tid in self._undo
        super().rollback(tid)
        # Deadlock victims roll back without a user-level abort() call;
        # close their log history too.
        if had_undo and tid in self._logged_begin:
            self.wal.log_abort(tid)
            self._logged_begin.discard(tid)

    # -- crash and restart ------------------------------------------------------

    def simulate_crash(self) -> "RecoverableDatabase":
        """Lose everything volatile; come back from the log alone.

        In-flight transactions are the losers — their effects are undone
        by recovery; everything committed is present in the restarted
        database.
        """
        recovered_tables = recover(self.wal)
        restarted = RecoverableDatabase(name=self.name, wal=self.wal)
        for table, rows in recovered_tables.items():
            restarted.create_table_silently(table, rows)
        return restarted

    def create_table_silently(
        self, table: str, rows: Dict[Any, Any]
    ) -> None:
        """Install recovered contents without re-logging them (used only
        by restart recovery; the log already describes this state)."""
        Database.create_table(self, table, rows)

    def recovered_contents(self) -> Dict[str, Dict[Any, Any]]:
        """What restart recovery would rebuild right now (non-mutating
        aside from recovery's loser-abort records)."""
        return recover(self.wal)
