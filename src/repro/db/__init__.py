"""Mini database substrate: tables, MGL-protected operations, executor."""

from .database import Blocked, Database
from .executor import Executor, ExecutorReport, ScriptedTransaction, StallError
from .recovery import RecoverableDatabase
from .wal import LogRecord, WriteAheadLog, analyze, recover

__all__ = [
    "Blocked",
    "Database",
    "Executor",
    "ExecutorReport",
    "LogRecord",
    "RecoverableDatabase",
    "ScriptedTransaction",
    "StallError",
    "WriteAheadLog",
    "analyze",
    "recover",
]
