"""Analysis helpers: scenario builders, complexity measurement, graph
statistics and report rendering."""

from .complexity import (
    ScalingPoint,
    check_cprime_bounds,
    fit_linearity,
    measure,
    measure_chains,
    measure_ring_counts,
    measure_rings,
)
from .mds import (
    definition_deadlocked,
    is_deadlock_set,
    minimal_deadlock_sets,
)
from .optimality import (
    deadlock_cycles,
    greedy_abort_cost,
    min_cost_abort_set,
    optimality_gap,
)
from .graphs import GraphStats, hwtwbg_vs_wfg, stats, trrp_lengths
from .report import render_summaries, render_table
from .scenarios import (
    build_chain,
    build_mesh,
    build_reader_ladder,
    build_ring,
    build_rings,
    build_upgrade_pair,
)

__all__ = [
    "GraphStats",
    "ScalingPoint",
    "build_chain",
    "build_mesh",
    "build_reader_ladder",
    "build_ring",
    "build_rings",
    "build_upgrade_pair",
    "check_cprime_bounds",
    "deadlock_cycles",
    "definition_deadlocked",
    "greedy_abort_cost",
    "fit_linearity",
    "hwtwbg_vs_wfg",
    "is_deadlock_set",
    "measure",
    "measure_chains",
    "measure_ring_counts",
    "measure_rings",
    "min_cost_abort_set",
    "minimal_deadlock_sets",
    "optimality_gap",
    "render_summaries",
    "render_table",
    "stats",
    "trrp_lengths",
]
