"""Empirical validation of the paper's complexity claims (C1–C3).

Section 5 claims O(n + e) space, O(n + e) time for an acyclic table,
O(n + e·(c' + 1)) with cycles, victim selection in O(n), and
c' ≤ min(c, n).  These helpers run the detector over parametric
scenarios, read its instrumentation counters and check/report the
scaling.  ``fit_linearity`` quantifies how close a measured curve is to
linear via the residual of a least-squares line (using numpy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..core.detection import DetectionResult, detect_once
from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from . import scenarios


@dataclass
class ScalingPoint:
    """One measurement of detector effort at one scenario size."""

    size: int
    transactions: int
    edges: int
    edges_examined: int
    cycles_found: int
    backtracks: int

    @property
    def work(self) -> int:
        """The cost proxy the claims are about: edges examined plus the
        walk's bookkeeping steps."""
        return self.edges_examined + self.backtracks + self.transactions


def measure(
    builder: Callable[[int], Tuple[LockTable, List[int]]],
    sizes: Sequence[int],
) -> List[ScalingPoint]:
    """Run the periodic detector on ``builder(size)`` for each size."""
    points: List[ScalingPoint] = []
    for size in sizes:
        table, _tids = builder(size)
        result = detect_once(table, CostTable())
        stats = result.stats
        points.append(
            ScalingPoint(
                size=size,
                transactions=stats.transactions,
                edges=stats.edges_total,
                edges_examined=stats.edges_examined,
                cycles_found=stats.cycles_found,
                backtracks=stats.backtrack_steps,
            )
        )
    return points


def measure_chains(sizes: Sequence[int]) -> List[ScalingPoint]:
    """C1: acyclic chains — work should grow linearly in n + e."""
    return measure(scenarios.build_chain, sizes)


def measure_rings(sizes: Sequence[int]) -> List[ScalingPoint]:
    """C2 (single cycle): one ring of growing size — one cycle found,
    work linear in the ring length."""
    return measure(scenarios.build_ring, sizes)


def measure_ring_counts(
    counts: Sequence[int], ring_size: int = 4
) -> List[ScalingPoint]:
    """C2 (many cycles): constant-size rings, growing count — c' equals
    the ring count and work stays linear in total table size."""
    return measure(
        lambda count: scenarios.build_rings(count, ring_size), counts
    )


def fit_linearity(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares line fit; returns ``(slope, r_squared)``.

    An R² near 1 on a work-vs-size curve is the empirical signature of
    the claimed linear scaling.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    slope, intercept = np.polyfit(x, y, 1)
    predicted = slope * x + intercept
    total = float(((y - y.mean()) ** 2).sum())
    if total == 0.0:
        return float(slope), 1.0
    residual = float(((y - predicted) ** 2).sum())
    return float(slope), 1.0 - residual / total


def check_cprime_bounds(result: DetectionResult, circuits: int) -> bool:
    """The paper's bound: c' ≤ min(c, n)."""
    stats = result.stats
    return stats.cycles_found <= min(circuits, stats.transactions)
