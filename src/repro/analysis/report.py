"""Plain-text table rendering for experiment outputs.

Every benchmark prints its rows through these helpers so EXPERIMENTS.md
and the bench output share one format: fixed-width columns, left-aligned
labels, right-aligned numbers.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence


def format_value(value: object) -> str:
    if isinstance(value, float):
        return "{:.4g}".format(value)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width text table."""
    cells = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(parts: Sequence[str]) -> str:
        return "  ".join(
            part.ljust(widths[i]) if i == 0 else part.rjust(widths[i])
            for i, part in enumerate(parts)
        )

    out: List[str] = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def render_summaries(
    summaries: Mapping[str, Dict[str, float]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render per-strategy metric summaries (see ``Metrics.summary``)."""
    names = list(summaries)
    if not names:
        return "(no data)"
    if columns is None:
        columns = list(summaries[names[0]].keys())
    headers = ["strategy"] + list(columns)
    rows = [
        [name] + [summaries[name].get(column, "") for column in columns]
        for name in names
    ]
    return render_table(headers, rows, title=title)
