"""Near-optimality of greedy victim selection (experiment C4).

Breaking all deadlock cycles with a minimum total abort cost is the
weighted feedback vertex set problem, which the paper notes is NP-hard
[2, 11]; its algorithm therefore resolves each detected cycle greedily
with that cycle's minimum-cost candidate and claims the result is "near
optimal".  This module makes the claim measurable:

* :func:`min_cost_abort_set` — the true optimum by exhaustive search
  over subsets of cycle participants (exponential; fine at experiment
  scale, guarded by ``max_participants``);
* :func:`greedy_abort_cost` — what the paper's detector actually pays on
  a copy of the same state (TDR-2 disabled so both sides pay in aborts);
* :func:`optimality_gap` — their ratio (1.0 = optimal).
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Set, Tuple

from ..baselines.johnson import elementary_circuits
from ..baselines.wfg import adjacency
from ..core.detection import PeriodicDetector
from ..core.serialize import table_from_dict, table_to_dict
from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable


def deadlock_cycles(table: LockTable) -> List[Set[int]]:
    """All elementary wait-for cycles as vertex sets."""
    return [set(c) for c in elementary_circuits(adjacency(table.snapshot()))]


def min_cost_abort_set(
    table: LockTable,
    costs: CostTable,
    max_participants: int = 16,
) -> Tuple[Set[int], float]:
    """The cheapest transaction set whose removal breaks every cycle.

    Exhaustive search over subsets of the cycle participants, smallest
    cardinality first, tracking the best cost.  Raises ``ValueError``
    when the instance exceeds ``max_participants`` (the search is
    exponential by nature — that is the paper's point).
    """
    cycles = deadlock_cycles(table)
    if not cycles:
        return set(), 0.0
    participants = sorted(set().union(*cycles))
    if len(participants) > max_participants:
        raise ValueError(
            "instance has {} participants; exhaustive search capped at "
            "{}".format(len(participants), max_participants)
        )

    best_set: Optional[Set[int]] = None
    best_cost = float("inf")
    cheapest_single = min(costs.cost(tid) for tid in participants)
    for size in range(1, len(participants) + 1):
        if best_set is not None and cheapest_single * size >= best_cost:
            break  # every subset of this size already costs too much
        for subset in combinations(participants, size):
            chosen = set(subset)
            cost = sum(costs.cost(tid) for tid in chosen)
            if cost >= best_cost:
                continue
            if all(cycle & chosen for cycle in cycles):
                best_set, best_cost = chosen, cost
    assert best_set is not None  # cycles exist => some hitting set does
    return best_set, best_cost


def greedy_abort_cost(
    table: LockTable, costs: CostTable
) -> Tuple[List[int], float]:
    """Run the paper's detector (abort-only) on a deep copy of the state
    and price its victims with the same cost table."""
    clone = table_from_dict(table_to_dict(table))
    clone_costs = CostTable(
        {tid: costs.cost(tid) for tid in clone.active_tids()}
    )
    result = PeriodicDetector(clone, clone_costs, allow_tdr2=False).run()
    return result.aborted, sum(costs.cost(tid) for tid in result.aborted)


def optimality_gap(
    table: LockTable, costs: CostTable, max_participants: int = 16
) -> Tuple[float, float, float]:
    """``(greedy_cost, optimal_cost, ratio)`` for one deadlocked state.

    Ratio 1.0 means the greedy selection was optimal; the paper's
    "near optimal" claim predicts ratios close to 1 on typical states.
    """
    _, optimal_cost = min_cost_abort_set(table, costs, max_participants)
    _, greedy_cost = greedy_abort_cost(table, costs)
    if optimal_cost == 0.0:
        return greedy_cost, optimal_cost, 1.0
    return greedy_cost, optimal_cost, greedy_cost / optimal_cost
