"""Minimal deadlock sets — the appendix's Definitions 1–3, executable.

Definition 1 (after Beeri-Obermarck): a subset ``T'`` of transactions is
a **deadlock set** if all its members have outstanding requests and,
even if every other transaction were removed and its resources released,
no request of ``T'`` could be satisfied.  Definition 2: minimal = no
proper subset is one.  Definition 3: the system is deadlocked iff a
non-empty minimal deadlock set exists.

This module implements the definition *literally*: it clones the lock
table, releases everything outside the candidate subset (letting the
real scheduler run its grant sweeps — "their resources were released"),
and checks whether any member became runnable.  Brute force over subsets
of the blocked transactions then yields the definitional deadlock oracle
and all minimal deadlock sets — the strongest cross-check Theorem 1 can
be tested against, and the ground truth for Lemma 4's unique-edge
property.
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, List, Set

from ..core.serialize import table_from_dict, table_to_dict
from ..lockmgr import scheduler
from ..lockmgr.lock_table import LockTable


def is_deadlock_set(table: LockTable, subset: Set[int]) -> bool:
    """Definition 1, executed on a clone of ``table``."""
    if not subset:
        return False
    if any(not table.is_blocked(tid) for tid in subset):
        return False  # all members must have outstanding requests
    clone = table_from_dict(table_to_dict(table))
    for tid in sorted(clone.active_tids()):
        if tid not in subset:
            scheduler.release_all(clone, tid)
    # "no request of a transaction of T' could be completely satisfied":
    # after the releases (and their grant sweeps), every member must
    # still be blocked.
    return all(clone.is_blocked(tid) for tid in subset)


def minimal_deadlock_sets(
    table: LockTable, max_blocked: int = 14
) -> List[FrozenSet[int]]:
    """All minimal deadlock sets, by subset enumeration (smallest first).

    Exponential in the number of blocked transactions; guarded by
    ``max_blocked`` — this is a verification oracle, not a detector.
    """
    blocked = sorted(table.blocked_tids())
    if len(blocked) > max_blocked:
        raise ValueError(
            "{} blocked transactions exceed the enumeration cap "
            "{}".format(len(blocked), max_blocked)
        )
    found: List[FrozenSet[int]] = []
    for size in range(1, len(blocked) + 1):
        for candidate in combinations(blocked, size):
            candidate_set = frozenset(candidate)
            if any(existing <= candidate_set for existing in found):
                continue  # a subset already qualifies: not minimal
            if is_deadlock_set(table, set(candidate_set)):
                found.append(candidate_set)
    return found


def definition_deadlocked(table: LockTable, max_blocked: int = 14) -> bool:
    """Definition 3: deadlocked iff a non-empty minimal deadlock set
    exists."""
    blocked = sorted(table.blocked_tids())
    if len(blocked) > max_blocked:
        raise ValueError(
            "{} blocked transactions exceed the enumeration cap "
            "{}".format(len(blocked), max_blocked)
        )
    for size in range(1, len(blocked) + 1):
        for candidate in combinations(blocked, size):
            if is_deadlock_set(table, set(candidate)):
                return True
    return False
