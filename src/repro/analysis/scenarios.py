"""Synthetic lock-table scenario builders for complexity experiments.

The C1–C3 experiments need lock tables of controlled shape — chains
without cycles, rings of k transactions, lattices with many overlapping
cycles — at parametric sizes.  These builders construct them directly
through the scheduler (never by poking table internals), so every
scenario is a state the real system can reach.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.modes import LockMode
from ..lockmgr import scheduler
from ..lockmgr.lock_table import LockTable


def build_chain(length: int) -> Tuple[LockTable, List[int]]:
    """``length`` transactions in a straight waiting line, no cycle:
    T1 holds R1; T2 waits for R1 while holding R2; T3 waits for R2 ...

    Returns the table and the transaction ids.
    """
    table = LockTable()
    tids = list(range(1, length + 1))
    for position, tid in enumerate(tids):
        scheduler.request(table, tid, "R{}".format(position + 1), LockMode.X)
    for position, tid in enumerate(tids[1:], start=1):
        scheduler.request(table, tid, "R{}".format(position), LockMode.X)
    return table, tids


def build_ring(size: int) -> Tuple[LockTable, List[int]]:
    """A single deadlock cycle of ``size`` transactions: Ti holds Ri and
    waits for R(i-1); T1 closes the ring by waiting for R(size)."""
    if size < 2:
        raise ValueError("a deadlock ring needs at least 2 transactions")
    table = LockTable()
    tids = list(range(1, size + 1))
    for position, tid in enumerate(tids):
        scheduler.request(table, tid, "R{}".format(position + 1), LockMode.X)
    for position, tid in enumerate(tids[1:], start=1):
        scheduler.request(table, tid, "R{}".format(position), LockMode.X)
    scheduler.request(table, tids[0], "R{}".format(size), LockMode.X)
    return table, tids


def build_rings(count: int, size: int) -> Tuple[LockTable, List[int]]:
    """``count`` disjoint deadlock rings of ``size`` transactions each
    (c' scales with the number of cycles; every ring costs one victim)."""
    table = LockTable()
    tids: List[int] = []
    next_tid = 1
    for ring in range(count):
        ring_tids = list(range(next_tid, next_tid + size))
        next_tid += size
        prefix = "G{}:".format(ring)
        for position, tid in enumerate(ring_tids):
            scheduler.request(
                table, tid, "{}R{}".format(prefix, position + 1), LockMode.X
            )
        for position, tid in enumerate(ring_tids[1:], start=1):
            scheduler.request(
                table, tid, "{}R{}".format(prefix, position), LockMode.X
            )
        scheduler.request(
            table, ring_tids[0], "{}R{}".format(prefix, size), LockMode.X
        )
        tids.extend(ring_tids)
    return table, tids


def build_reader_ladder(readers: int) -> Tuple[LockTable, List[int]]:
    """One writer blocked behind ``readers`` concurrent S holders, each
    of which is blocked elsewhere — the shape on which Agrawal's
    single-representative edge loses information (experiment X1).

    T1..Tn hold S on the shared resource "HOT" and each Ti additionally
    waits for a private resource held by the writer W, so a cycle exists
    through *every* reader; a detector that records only one reader edge
    sees only one of them.
    """
    table = LockTable()
    writer = readers + 1
    reader_tids = list(range(1, readers + 1))
    for position, tid in enumerate(reader_tids):
        scheduler.request(table, tid, "HOT", LockMode.S)
    for position in range(readers):
        scheduler.request(
            table, writer, "P{}".format(position + 1), LockMode.X
        )
    scheduler.request(table, writer, "HOT", LockMode.X)  # blocks on readers
    for position, tid in enumerate(reader_tids):
        scheduler.request(
            table, tid, "P{}".format(position + 1), LockMode.S
        )  # each blocks on the writer -> n overlapping cycles
    return table, reader_tids + [writer]


def build_mesh(depth: int, width: int) -> Tuple[LockTable, List[int]]:
    """A layered deadlock mesh with elementary-cycle count exponential in
    ``depth`` (order ``width ** depth``; FIFO queue-predecessor edges add
    a constant factor) through only ``1 + width*depth`` transactions.

    One writer W holds X on ``P`` and waits behind the S holders of
    ``HOT`` (layer 1).  Every layer-k member X-requests its own resource,
    which all layer-(k+1) members hold S on — a complete bipartite
    waited-by stage between adjacent layers.  The last layer queues on
    ``P``.  Elementary cycles pick one member per layer, so the count is
    exponential in the depth while the periodic walk still searches at
    most ``n`` cycles — the X4 experiment's combinatorial family
    (Jiang's worst case is ``O(3^{n/3})`` of exactly this flavor).
    """
    if depth < 1 or width < 1:
        raise ValueError("mesh needs depth >= 1 and width >= 1")
    table = LockTable()
    writer = depth * width + 1
    layers = [
        list(range(1 + level * width, 1 + (level + 1) * width))
        for level in range(depth)
    ]

    scheduler.request(table, writer, "P", LockMode.X)
    for tid in layers[0]:
        scheduler.request(table, tid, "HOT", LockMode.S)
    for level in range(depth - 1):
        for position, tid in enumerate(layers[level]):
            rid = "B{}_{}".format(level, position)
            for lower in layers[level + 1]:
                scheduler.request(table, lower, rid, LockMode.S)
    scheduler.request(table, writer, "HOT", LockMode.X)  # W waits layer 1
    for level in range(depth - 1):
        for position, tid in enumerate(layers[level]):
            rid = "B{}_{}".format(level, position)
            scheduler.request(table, tid, rid, LockMode.X)
    for tid in layers[-1]:
        scheduler.request(table, tid, "P", LockMode.S)  # queue on W
    tids = [tid for layer in layers for tid in layer] + [writer]
    return table, tids


def build_upgrade_pair() -> Tuple[LockTable, List[int]]:
    """The canonical conversion deadlock: two S holders both upgrading to
    X — Observation 3.1(3)'s "kind of deadlock" inside one holder list."""
    table = LockTable()
    scheduler.request(table, 1, "R", LockMode.S)
    scheduler.request(table, 2, "R", LockMode.S)
    scheduler.request(table, 1, "R", LockMode.X)
    scheduler.request(table, 2, "R", LockMode.X)
    return table, [1, 2]
