"""Graph statistics over H/W-TWBG instances (analysis helpers).

Used by benchmarks and notebooks to characterize workloads: edge/label
counts, TRRP structure, elementary-circuit counts (via the Johnson
baseline) and cross-checks between H/W-TWBG and the classic wait-for
graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..baselines.wfg import adjacency as wfg_adjacency, find_cycle
from ..core.hw_twbg import HWTWBG, H_LABEL, W_LABEL, build_graph
from ..core.requests import ResourceState


@dataclass
class GraphStats:
    """Shape summary of one H/W-TWBG."""

    vertices: int
    edges: int
    h_edges: int
    w_edges: int
    circuits: int
    blocked: int

    @property
    def density(self) -> float:
        if self.vertices < 2:
            return 0.0
        return self.edges / (self.vertices * (self.vertices - 1))


def stats(states: Iterable[ResourceState]) -> GraphStats:
    """Compute shape statistics of the H/W-TWBG of ``states``."""
    states = list(states)
    graph = build_graph(states)
    h_count = sum(1 for e in graph.edges if e.label == H_LABEL)
    w_count = sum(1 for e in graph.edges if e.label == W_LABEL)
    blocked = set()
    for state in states:
        blocked.update(h.tid for h in state.holders if h.is_blocked)
        blocked.update(q.tid for q in state.queue)
    return GraphStats(
        vertices=len(graph.vertices),
        edges=len(graph.edges),
        h_edges=h_count,
        w_edges=w_count,
        circuits=len(graph.elementary_cycles()),
        blocked=len(blocked),
    )


def hwtwbg_vs_wfg(states: Iterable[ResourceState]) -> Dict[str, bool]:
    """Theorem-1 cross-check: the H/W-TWBG has a cycle exactly when the
    full wait-for graph does."""
    states = list(states)
    graph = build_graph(states)
    wfg_cyclic = find_cycle(wfg_adjacency(states)) is not None
    return {
        "hwtwbg_cycle": graph.has_cycle(),
        "wfg_cycle": wfg_cyclic,
        "agree": graph.has_cycle() == wfg_cyclic,
    }


def trrp_lengths(graph: HWTWBG) -> List[int]:
    """Lengths of the TRRPs of every elementary cycle (property 3: each
    cycle decomposes into >= 2 TRRPs)."""
    lengths: List[int] = []
    for cycle in graph.elementary_cycles():
        lengths.append(len(graph.trrps(cycle)))
    return lengths
