"""The lock manager substrate: lock table, Section-3 scheduler and the
LockManager façade."""

from .concurrent import ConcurrentLockManager
from .events import Aborted, Blocked, Granted, Repositioned
from .introspect import (
    BlockExplanation,
    explain_block,
    render_report,
    wait_graph_summary,
)
from .lock_table import LockTable
from .manager import LockManager
from .sharded import (
    MergedTableView,
    ShardedLockCore,
    ShardedLockManager,
    ShardedPass,
    resolve_shard_count,
    shard_of,
)
from .scheduler import (
    RequestOutcome,
    conversion_grantable,
    release_all,
    remove_holder,
    remove_waiter,
    reposition_queue,
    request,
    sweep,
)

__all__ = [
    "Aborted",
    "Blocked",
    "BlockExplanation",
    "ConcurrentLockManager",
    "Granted",
    "LockManager",
    "LockTable",
    "MergedTableView",
    "Repositioned",
    "RequestOutcome",
    "ShardedLockCore",
    "ShardedLockManager",
    "ShardedPass",
    "conversion_grantable",
    "explain_block",
    "release_all",
    "remove_holder",
    "remove_waiter",
    "render_report",
    "reposition_queue",
    "request",
    "resolve_shard_count",
    "shard_of",
    "sweep",
    "wait_graph_summary",
]
