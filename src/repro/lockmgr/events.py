"""Event records emitted by the lock manager.

The scheduler and the deadlock detector are pure data-structure code; they
communicate outcomes to the transaction layer and to the simulator through
these small event objects instead of callbacks.  Every mutation of the
lock table that a transaction could observe (a request granted late, a
transaction chosen as deadlock victim, a queue repositioned by TDR-2)
is reported as an event.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.modes import LockMode


@dataclass(frozen=True)
class Granted:
    """A previously blocked request of ``tid`` on ``rid`` was granted.

    ``mode`` is the mode now held (for conversions, the converted target
    mode).  ``immediate`` is True when the grant happened at request time
    rather than by a later release/resolution sweep.
    """

    tid: int
    rid: str
    mode: LockMode
    immediate: bool = False


@dataclass(frozen=True)
class Blocked:
    """The request of ``tid`` on ``rid`` could not be granted.

    ``conversion`` tells whether the transaction waits inside the holder
    list (lock conversion) or in the FIFO queue.
    """

    tid: int
    rid: str
    mode: LockMode
    conversion: bool


@dataclass(frozen=True)
class Aborted:
    """``tid`` was aborted, e.g. as a deadlock victim."""

    tid: int
    reason: str


@dataclass(frozen=True)
class Repositioned:
    """TDR-2 reordered the queue of ``rid`` (deadlock resolved without
    aborting anyone).  ``delayed`` lists the transactions in ST whose
    requests were moved behind the AV prefix."""

    rid: str
    delayed: tuple
