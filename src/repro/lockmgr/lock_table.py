"""The lock table: every locked resource's state plus two indexes.

The paper's lock manager (Section 2) "maintains a lock table which holds,
for each resource being locked, a holder list, a queue and a total mode of
the holders".  This class stores those :class:`ResourceState` records and
two derived indexes the algorithms need constantly:

* ``held_by(tid)`` — the resources a transaction currently appears in as a
  holder (strict 2PL releases them all at transaction end);
* ``blocked_at(tid)`` — the single resource a transaction is blocked at,
  or ``None``.  Axiom 1 of the paper ("no transaction appears more than
  once in the queue of the whole system") is enforced here: a blocked
  transaction cannot issue another request, so it can wait at one place
  only.

All mutation goes through :mod:`repro.lockmgr.scheduler`; the table itself
only offers consistent primitive updates.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set

from ..core.errors import LockTableError, UnknownResourceError
from ..core.requests import ResourceState


class LockTable:
    """Mapping of resource identifier to :class:`ResourceState` with
    transaction-side indexes."""

    def __init__(self) -> None:
        self._resources: Dict[str, ResourceState] = {}
        self._held: Dict[int, Set[str]] = {}
        self._blocked_at: Dict[int, str] = {}
        self._blocked_in_queue: Dict[int, bool] = {}

    # -- resource access -------------------------------------------------

    def resource(self, rid: str) -> ResourceState:
        """The state of ``rid``, creating an empty entry on first use."""
        state = self._resources.get(rid)
        if state is None:
            state = ResourceState(rid=rid)
            self._resources[rid] = state
        return state

    def existing(self, rid: str) -> ResourceState:
        """The state of ``rid``; raises if the resource is not locked."""
        try:
            return self._resources[rid]
        except KeyError:
            raise UnknownResourceError(rid) from None

    def drop_if_free(self, rid: str) -> None:
        """Remove the entry of ``rid`` when no holder or waiter remains,
        keeping the table proportional to the locked set."""
        state = self._resources.get(rid)
        if state is not None and state.is_free:
            del self._resources[rid]

    def install(self, state: ResourceState) -> None:
        """Adopt a fully-built state (merge and deserialize paths):
        store it under its rid and rebuild the transaction-side indexes
        from its holder list and queue."""
        if state.rid in self._resources:
            raise LockTableError(
                "resource {} is already present".format(state.rid)
            )
        self._resources[state.rid] = state
        for holder in state.holders:
            self.note_holder(holder.tid, state.rid)
            if holder.is_blocked:
                self.note_blocked(holder.tid, state.rid, in_queue=False)
        for waiter in state.queue:
            self.note_blocked(waiter.tid, state.rid, in_queue=True)

    def resources(self) -> Iterator[ResourceState]:
        """All locked resources (iteration order = first-lock order)."""
        return iter(self._resources.values())

    def resource_ids(self) -> List[str]:
        return list(self._resources)

    def __contains__(self, rid: str) -> bool:
        return rid in self._resources

    def __len__(self) -> int:
        return len(self._resources)

    # -- transaction-side indexes -----------------------------------------

    def held_by(self, tid: int) -> Set[str]:
        """Resource ids where ``tid`` is currently in the holder list."""
        return set(self._held.get(tid, ()))

    def blocked_at(self, tid: int) -> Optional[str]:
        """The resource ``tid`` is blocked at, or ``None`` if runnable."""
        return self._blocked_at.get(tid)

    def is_blocked(self, tid: int) -> bool:
        return tid in self._blocked_at

    def blocked_in_queue(self, tid: int) -> bool:
        """True when ``tid`` waits in a queue (False: blocked conversion,
        i.e. waiting inside a holder list)."""
        return self._blocked_in_queue.get(tid, False)

    def blocked_tids(self) -> List[int]:
        """All blocked transactions, in no particular order."""
        return list(self._blocked_at)

    def blocked_count(self) -> int:
        """Number of blocked transactions — O(1), no list build (use
        this for gauges and guards instead of ``len(blocked_tids())``)."""
        return len(self._blocked_at)

    def active_tids(self) -> Set[int]:
        """Every transaction appearing anywhere in the table."""
        tids = set(self._held)
        tids.update(self._blocked_at)
        return tids

    # -- index maintenance (called by the scheduler) ----------------------

    def note_holder(self, tid: int, rid: str) -> None:
        self._held.setdefault(tid, set()).add(rid)

    def forget_holder(self, tid: int, rid: str) -> None:
        rids = self._held.get(tid)
        if rids is not None:
            rids.discard(rid)
            if not rids:
                del self._held[tid]

    def note_blocked(self, tid: int, rid: str, in_queue: bool) -> None:
        current = self._blocked_at.get(tid)
        if current is not None and current != rid:
            raise LockTableError(
                "transaction {} is already blocked at {} and cannot also "
                "wait at {}".format(tid, current, rid)
            )
        self._blocked_at[tid] = rid
        self._blocked_in_queue[tid] = in_queue

    def forget_blocked(self, tid: int) -> None:
        self._blocked_at.pop(tid, None)
        self._blocked_in_queue.pop(tid, None)

    # -- presentation ------------------------------------------------------

    def snapshot(self) -> List[ResourceState]:
        """Deep copies of every resource (for detectors' what-if analyses
        and for tests)."""
        return [state.copy() for state in self._resources.values()]

    def __str__(self) -> str:
        return "\n".join(str(state) for state in self._resources.values())
