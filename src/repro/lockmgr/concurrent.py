"""A thread-safe, blocking front end over the lock manager.

The core library is deliberately single-threaded and deterministic; this
wrapper makes it usable from real threads: ``acquire`` *blocks the
calling thread* until the lock is granted, the wait times out, or a
deadlock detection pass aborts the caller (raising
:class:`~repro.core.errors.TransactionAborted`).

Since the sharding refactor this facade is the **1-shard special case**
of :class:`~repro.lockmgr.sharded.ShardedLockManager`: one mutex (the
single shard's) protects the lock table, one condition variable per
blocked transaction carries wake-ups, and an optional daemon thread
runs the periodic detector every ``period`` seconds.  With
``continuous=True`` detection instead happens inline on each block, as
in the companion algorithm.  Callers who want per-resource parallelism
construct ``ShardedLockManager(shards=N)`` directly.

Strict 2PL is preserved: threads release everything at once via
``commit``/``abort``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

from ..core.victim import CostTable
from .sharded import ShardedLockCore, ShardedLockManager


class ConcurrentLockManager(ShardedLockManager):
    """Blocking, thread-safe lock acquisition with deadlock handling.

    ``wait_fn`` is the facade's single interleaving point: it is called
    as ``wait_fn(condition, timeout)`` with the mutex held and must
    behave like :meth:`threading.Condition.wait` (release the mutex
    while waiting, return False on timeout).  The default is exactly
    that; the deterministic schedule explorer (:mod:`repro.check`)
    injects a controlled wait to pin down wakeup/timeout races that
    wall-clock tests cannot reproduce reliably.
    """

    def __init__(
        self,
        costs: Optional[CostTable] = None,
        continuous: bool = False,
        period: Optional[float] = None,
        wait_fn: Optional[
            Callable[[threading.Condition, Optional[float]], bool]
        ] = None,
        policy=None,
    ) -> None:
        super().__init__(
            shards=1,
            costs=costs,
            continuous=continuous,
            period=period,
            wait_fn=wait_fn,
            policy=policy,
        )

    # Compatibility aliases: tests (and facade subclasses) reach into
    # the pre-sharding attributes.

    @property
    def _manager(self) -> ShardedLockCore:
        """The single-shard core (the old embedded ``LockManager``)."""
        return self._core

    @property
    def _mutex(self):
        """The single shard's (re-entrant) mutex."""
        return self._core.shards[0].mutex

    @property
    def _wakeups(self) -> Dict[int, threading.Condition]:
        """The single shard's per-transaction wait conditions."""
        return self._core.shards[0].wakeups
