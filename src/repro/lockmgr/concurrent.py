"""A thread-safe, blocking front end over the lock manager.

The core library is deliberately single-threaded and deterministic; this
wrapper makes it usable from real threads: ``acquire`` *blocks the
calling thread* until the lock is granted, the wait times out, or a
deadlock detection pass aborts the caller (raising
:class:`~repro.core.errors.TransactionAborted`).

Design: one big mutex protects the lock table (the paper's algorithms
are fast, fine-grained latching would buy nothing here), one condition
variable per blocked transaction carries wake-ups, and an optional
daemon thread runs the periodic detector every ``period`` seconds.  With
``continuous=True`` detection instead happens inline on each block, as
in the companion algorithm.

Strict 2PL is preserved: threads release everything at once via
``commit``/``abort``.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from ..core.detection import DetectionResult
from ..core.errors import TransactionAborted
from ..core.modes import LockMode
from ..core.victim import CostTable
from .manager import LockManager


def _default_wait(
    condition: threading.Condition, timeout: Optional[float]
) -> bool:
    return condition.wait(timeout=timeout)


class ConcurrentLockManager:
    """Blocking, thread-safe lock acquisition with deadlock handling.

    ``wait_fn`` is the facade's single interleaving point: it is called
    as ``wait_fn(condition, timeout)`` with the mutex held and must
    behave like :meth:`threading.Condition.wait` (release the mutex
    while waiting, return False on timeout).  The default is exactly
    that; the deterministic schedule explorer (:mod:`repro.check`)
    injects a controlled wait to pin down wakeup/timeout races that
    wall-clock tests cannot reproduce reliably.
    """

    def __init__(
        self,
        costs: Optional[CostTable] = None,
        continuous: bool = False,
        period: Optional[float] = None,
        wait_fn: Optional[
            Callable[[threading.Condition, Optional[float]], bool]
        ] = None,
    ) -> None:
        self._manager = LockManager(costs=costs, continuous=continuous)
        self._mutex = threading.Lock()
        self._wakeups: Dict[int, threading.Condition] = {}
        self._wait_fn = wait_fn if wait_fn is not None else _default_wait
        self._stop = threading.Event()
        self._detector_thread: Optional[threading.Thread] = None
        if period is not None:
            self._detector_thread = threading.Thread(
                target=self._detector_loop,
                args=(period,),
                name="repro-deadlock-detector",
                daemon=True,
            )
            self._detector_thread.start()

    # -- locking -----------------------------------------------------------

    def acquire(
        self,
        tid: int,
        rid: str,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> bool:
        """Acquire (or convert to) ``mode`` on ``rid``, blocking the
        calling thread until granted.

        Returns False only on timeout (the request stays queued; call
        again or abort).  Raises :class:`TransactionAborted` when a
        detection pass chose the caller as victim while it waited.
        """
        with self._mutex:
            if self._manager.was_aborted(tid):
                raise TransactionAborted(tid)
            if not self._manager.is_blocked(tid):
                # Not already waiting: issue the request.  (A re-call
                # after a timed-out acquire finds the transaction still
                # blocked and simply resumes waiting below.)
                outcome = self._manager.lock(tid, rid, mode)
                if outcome.granted:
                    return True
                if self._manager.last_detection is not None:
                    self._service(self._manager.last_detection)
                    if self._manager.was_aborted(tid):
                        raise TransactionAborted(tid)
                    if not self._manager.is_blocked(tid):
                        return True
            condition = self._wakeups.setdefault(
                tid, threading.Condition(self._mutex)
            )
            while True:
                woken = self._wait_fn(condition, timeout)
                # State first, wait result second: a wake-up racing the
                # timeout must never report a timeout after the grant
                # (the caller would believe it holds nothing while the
                # lock table says it does) nor swallow an abort.
                if self._manager.was_aborted(tid):
                    raise TransactionAborted(tid)
                if not self._manager.is_blocked(tid):
                    return True
                if not woken:
                    return False  # timed out; request still queued

    def commit(self, tid: int) -> None:
        """Release everything ``tid`` holds and wake the grantees."""
        with self._mutex:
            grants = self._manager.finish(tid)
            self._wakeups.pop(tid, None)
            self._notify(event.tid for event in grants)

    def abort(self, tid: int) -> None:
        """Abort ``tid``: identical release path (strict 2PL)."""
        self.commit(tid)

    # -- detection ------------------------------------------------------------

    def detect(self) -> DetectionResult:
        """Run one periodic pass now (also used by the daemon thread)."""
        with self._mutex:
            result = self._manager.detect()
            self._service(result)
            return result

    def _detector_loop(self, period: float) -> None:
        while not self._stop.wait(period):
            self.detect()

    def _service(self, result: DetectionResult) -> None:
        """Wake victims (to observe their abort) and grantees.  Caller
        holds the mutex."""
        self._notify(result.aborted)
        self._notify(event.tid for event in result.grants)

    def _notify(self, tids) -> None:
        for tid in tids:
            condition = self._wakeups.get(tid)
            if condition is not None:
                condition.notify_all()

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Stop the background detector thread (if any)."""
        self._stop.set()
        if self._detector_thread is not None:
            self._detector_thread.join(timeout=5.0)

    def __enter__(self) -> "ConcurrentLockManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection ----------------------------------------------------------------

    def holding(self, tid: int) -> Dict[str, LockMode]:
        with self._mutex:
            return self._manager.holding(tid)

    def deadlocked(self) -> bool:
        with self._mutex:
            return self._manager.deadlocked()

    def snapshot(self) -> List[str]:
        """Render the table under the mutex (debugging)."""
        with self._mutex:
            return str(self._manager).splitlines()
