"""The scheduling policy of Section 3.

Lock requests are honored first-in-first-out except for lock conversions:

* A **new requestor** joins the FIFO queue unless the queue is empty *and*
  its mode is compatible with the resource's total mode, in which case it
  is granted immediately.
* A **lock conversion** (the requestor already holds the resource) jumps
  the queue: the target mode ``Conv(gm, requested)`` is computed and the
  conversion is granted when that target is compatible with the granted
  modes of all *other* holders.  A blocked conversion stays in the holder
  list with ``bm`` set to the target mode, repositioned by the **Upgrader
  Positioning Rule (UPR)**.

The UPR (backed by Observation 3.1) orders blocked conversions so that
Theorem 3.1 holds: if an earlier blocked conversion cannot be granted,
no later one can be either — which lets the release-time sweep stop at
the first non-grantable conversion.

Two occasions trigger the **grant sweep** (:func:`sweep`): a holder leaves
(commit or abort) and the first queue member leaves (abort).  The sweep
first tries blocked conversions from the front of the holder list, then
FIFO-grants queue members while their modes remain compatible with the
total mode.

Invariant maintained throughout: within a holder list, all blocked
conversions precede all unblocked holders (UPR places blocked entries in
the blocked prefix; grants move entries just behind it).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import LockTableError
from ..core.modes import LockMode, compatible, convert
from ..core.requests import HolderEntry, QueueEntry, ResourceState
from .events import Blocked, Granted
from .lock_table import LockTable


class RequestOutcome:
    """Result of :func:`request`: either one ``Granted`` (immediate) or
    one ``Blocked`` event.

    ``granted`` is True for immediate grants.  ``mode`` is the mode now
    held or waited for (for conversions, the converted target mode).
    """

    __slots__ = ("event",)

    def __init__(self, event) -> None:
        self.event = event

    @property
    def granted(self) -> bool:
        return isinstance(self.event, Granted)

    @property
    def mode(self) -> LockMode:
        return self.event.mode

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "RequestOutcome({!r})".format(self.event)


def request(
    table: LockTable, tid: int, rid: str, mode: LockMode
) -> RequestOutcome:
    """Handle a lock request of ``tid`` for ``rid`` in ``mode`` (Section 3).

    Raises :class:`LockTableError` when the transaction is already blocked
    (the sequential model allows at most one outstanding request) or when
    ``mode`` is ``NL`` (not a request).
    """
    if mode is LockMode.NL:
        raise LockTableError("NL is not a requestable lock mode")
    if table.is_blocked(tid):
        raise LockTableError(
            "transaction {} is blocked at {} and cannot issue another "
            "request".format(tid, table.blocked_at(tid))
        )

    state = table.resource(rid)
    holder = state.holder_entry(tid)
    if holder is not None:
        return _request_conversion(table, state, holder, mode)
    return _request_new(table, state, tid, mode)


def _request_new(
    table: LockTable, state: ResourceState, tid: int, mode: LockMode
) -> RequestOutcome:
    """A requestor that holds nothing on the resource yet (FIFO path)."""
    if not state.queue and compatible(state.total, mode):
        _admit_holder(table, state, HolderEntry(tid, mode), at_end=True)
        return RequestOutcome(Granted(tid, state.rid, mode, immediate=True))

    state.enqueue(QueueEntry(tid, mode))
    table.note_blocked(tid, state.rid, in_queue=True)
    return RequestOutcome(Blocked(tid, state.rid, mode, conversion=False))


def _request_conversion(
    table: LockTable,
    state: ResourceState,
    holder: HolderEntry,
    mode: LockMode,
) -> RequestOutcome:
    """A holder re-requests the resource: compute the conversion target
    and grant it iff compatible with every other holder's granted mode."""
    target = convert(holder.granted, mode)
    if target is holder.granted:
        # Already covered — nothing to wait for; report an immediate grant.
        return RequestOutcome(
            Granted(holder.tid, state.rid, holder.granted, immediate=True)
        )

    if conversion_grantable(state, holder, target):
        state.set_holder_modes(holder, granted=target)
        return RequestOutcome(
            Granted(holder.tid, state.rid, target, immediate=True)
        )

    state.set_holder_modes(holder, blocked=target)
    _apply_upr(state, holder)
    table.note_blocked(holder.tid, state.rid, in_queue=False)
    return RequestOutcome(
        Blocked(holder.tid, state.rid, target, conversion=True)
    )


def conversion_grantable(
    state: ResourceState, holder: HolderEntry, target: Optional[LockMode] = None
) -> bool:
    """True when ``holder``'s conversion to ``target`` (default: its
    blocked mode) is compatible with the granted mode of all other
    holders.

    O(1): one AND of the target's conflict mask against the cached
    granted-group mask (with ``holder``'s own contribution removed) —
    ``holder`` must be a current member of ``state``'s holder list.
    """
    wanted = holder.blocked if target is None else target
    return state.conversion_compatible(holder, wanted)


def _blocked_prefix_length(state: ResourceState) -> int:
    """Length of the leading run of blocked conversions in the holder
    list (the list invariant keeps all of them at the front)."""
    count = 0
    for entry in state.holders:
        if not entry.is_blocked:
            break
        count += 1
    return count


def _admit_holder(
    table: LockTable, state: ResourceState, entry: HolderEntry, at_end: bool
) -> None:
    """Insert an unblocked holder entry.

    Immediate grants append at the end; grants produced by the sweep are
    inserted just behind the blocked prefix, matching the layouts the
    paper displays after resolution (Example 4.1's modified R2 and
    Example 5.1's final R1).
    """
    if at_end:
        state.add_holder(entry)
    else:
        state.add_holder(entry, index=_blocked_prefix_length(state))
    table.note_holder(entry.tid, state.rid)


def _apply_upr(state: ResourceState, entry: HolderEntry) -> None:
    """Reposition a newly blocked conversion per UPR-1/2/3 (Section 3).

    Pure list surgery — membership and modes are unchanged, so the
    state's cached summaries stay valid throughout."""
    holders = state.holders
    holders.remove(entry)
    holders.insert(_upr_index(holders, entry), entry)


def _upr_index(holders: List[HolderEntry], entry: HolderEntry) -> int:
    """Where UPR places ``entry`` in ``holders`` (given without it)."""
    # UPR-1: before the first blocked request whose bm is compatible
    # with ours (Observation 3.1(1): either could go first; FIFO keeps
    # the earlier arrival earlier, and we slot in just before the first
    # member of that compatible group).
    for index, other in enumerate(holders):
        if other.is_blocked and compatible(other.blocked, entry.blocked):
            return index

    # UPR-2: before the first blocked request that we can precede but
    # not follow (Observation 3.1(2): Comp(bm_i, gm_j) holds while
    # Comp(gm_i, bm_j) fails — scheduling us first is the only order).
    for index, other in enumerate(holders):
        if (
            other.is_blocked
            and compatible(other.granted, entry.blocked)
            and not compatible(other.blocked, entry.granted)
        ):
            return index

    # UPR-3: after all blocked requests, before all unblocked holders.
    count = 0
    for other in holders:
        if not other.is_blocked:
            break
        count += 1
    return count


def sweep(table: LockTable, rid: str) -> List[Granted]:
    """Grant whatever became grantable at ``rid`` (Section 3's release
    procedure).  Returns the grant events in grant order.

    Phase 1 walks the blocked-conversion prefix from the front and stops
    at the first non-grantable entry (justified by Theorem 3.1).  A
    granted conversion swaps ``bm`` into ``gm`` and moves just behind the
    remaining blocked prefix; the total mode is unchanged because the
    blocked mode already participated in it.

    Phase 2 FIFO-grants queue members while the front member's mode is
    compatible with the total mode, raising the total with each grant.
    """
    if rid not in table:
        return []
    state = table.existing(rid)
    grants: List[Granted] = []

    while state.holders and state.holders[0].is_blocked:
        entry = state.holders[0]
        if not conversion_grantable(state, entry):
            break
        state.holders.pop(0)
        state.set_holder_modes(
            entry, granted=entry.blocked, blocked=LockMode.NL
        )
        state.holders.insert(_blocked_prefix_length(state), entry)
        table.forget_blocked(entry.tid)
        grants.append(Granted(entry.tid, rid, entry.granted))

    while state.queue and compatible(state.total, state.queue[0].blocked):
        waiter = state.popleft_queue()
        _admit_holder(
            table, state, HolderEntry(waiter.tid, waiter.blocked), at_end=False
        )
        table.forget_blocked(waiter.tid)
        grants.append(Granted(waiter.tid, rid, waiter.blocked))

    table.drop_if_free(rid)
    return grants


def remove_holder(table: LockTable, tid: int, rid: str) -> List[Granted]:
    """Force a holder out (commit or abort) and run the grant sweep."""
    state = table.existing(rid)
    entry = state.remove_holder(tid)
    table.forget_holder(tid, rid)
    if entry.is_blocked:
        table.forget_blocked(tid)
    return sweep(table, rid)


def remove_waiter(table: LockTable, tid: int, rid: str) -> List[Granted]:
    """Remove a queued request (abort of a waiting transaction).

    Only the departure of the *first* queue member can enable grants
    (Section 3); removals further back just shrink the queue.
    """
    state = table.existing(rid)
    position = state.queue_position(tid)
    state.remove_from_queue(tid)
    table.forget_blocked(tid)
    if position == 0:
        return sweep(table, rid)
    table.drop_if_free(rid)
    return []


def release_all(table: LockTable, tid: int) -> List[Granted]:
    """Remove every trace of ``tid`` (transaction end: commit or abort)
    and sweep each affected resource.  Returns all grant events."""
    grants: List[Granted] = []
    blocked_rid = table.blocked_at(tid)
    if blocked_rid is not None and table.blocked_in_queue(tid):
        grants.extend(remove_waiter(table, tid, blocked_rid))
    for rid in sorted(table.held_by(tid)):
        grants.extend(remove_holder(table, tid, rid))
    return grants


def reposition_queue(
    table: LockTable, rid: str, av_tids: List[int], st_tids: List[int]
) -> None:
    """Apply TDR-2's queue surgery: move the requests of ``st_tids``
    right after those of ``av_tids`` (both given in current queue order);
    requests behind the examined prefix keep their positions.

    The caller (the detector) is responsible for running the grant sweep
    afterwards — the paper defers that to Step 3 via the change-list.
    """
    state = table.existing(rid)
    prefix = len(av_tids) + len(st_tids)
    examined = state.queue[:prefix]
    rest = state.queue[prefix:]
    by_tid = {entry.tid: entry for entry in examined}
    if set(by_tid) != set(av_tids) | set(st_tids):
        raise LockTableError(
            "AV/ST sets do not match the leading queue entries of "
            "{}".format(rid)
        )
    state.set_queue_order(
        [by_tid[tid] for tid in av_tids]
        + [by_tid[tid] for tid in st_tids]
        + rest
    )
