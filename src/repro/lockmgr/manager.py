"""LockManager — the façade over lock table, scheduler and detectors.

This is the component a database kernel would talk to.  It exposes the
paper's model faithfully:

* ``lock(tid, rid, mode)`` — the only way to acquire or convert a lock;
  honors requests FIFO except for conversions (Section 3).
* ``finish(tid)`` — strict two-phase locking releases *all* locks at
  transaction end (commit or abort); there is deliberately no public
  single-lock release.
* ``detect()`` — run the periodic detection-resolution pass (Section 5);
  with ``continuous=True`` the manager instead runs a rooted detection
  after every blocking request (the companion algorithm).

Detection *decisions* — what happens at block time, what runs around a
pass — live in one :class:`~repro.policy.base.DetectionPolicy` object
(``policy=``); the ``continuous`` flag is kept as a shorthand for the
continuous policy.  The default policy is the paper's periodic scheme,
bit-for-bit (the explorer's policy-equivalence oracle pins this down).

All observable effects are returned as event lists
(:mod:`repro.lockmgr.events`); the manager additionally keeps the
cumulative event log for inspection by tests and the simulator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Set

from ..core.errors import LockTableError
from ..core.hw_twbg import HWTWBG, build_graph
from ..core.modes import LockMode
from ..core.victim import CostTable
from .events import Aborted, Granted
from .lock_table import LockTable
from . import scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.detection import DetectionResult


class LockManager:
    """A strict-2PL lock manager with H/W-TWBG deadlock handling.

    Parameters
    ----------
    costs:
        Shared cost table for victim selection (default: unit costs).
    continuous:
        When True, every blocking request immediately triggers a rooted
        deadlock check (the continuous companion detector).  When False
        (default), deadlocks are only resolved by explicit :meth:`detect`
        calls — the periodic scheme.  Shorthand for
        ``policy="continuous"``.
    policy:
        A :class:`~repro.policy.base.DetectionPolicy` name or instance
        deciding block-time behavior and pass pre/post hooks; default
        the periodic policy.  Unlike the service-layer components the
        monolithic manager does **not** consult ``REPRO_POLICY`` —
        tests and embedded users get the paper's behavior unless they
        opt in explicitly.
    listener:
        Optional callable invoked with every event the manager logs
        (grants, blocks, aborts, repositions) at the moment it happens —
        the seam the telemetry layer (:mod:`repro.obs`) subscribes to.
    """

    def __init__(
        self,
        costs: Optional[CostTable] = None,
        continuous: bool = False,
        track_graph: bool = False,
        listener: Optional[Callable[[object], None]] = None,
        policy=None,
    ) -> None:
        # Imported here, not at module level: the detectors' modules use
        # this package's scheduler, so a top-level import would be
        # circular.
        from ..core.detection import PeriodicDetector
        from ..policy import resolve_policy

        self.table = LockTable()
        self.costs = costs if costs is not None else CostTable()
        self.policy = resolve_policy(
            policy, continuous=continuous, env=False
        ).bind(self)
        self.continuous = self.policy.continuous
        self._periodic = PeriodicDetector(self.table, self.costs)
        self.log: List[object] = []
        self.listener = listener
        self._aborted: Set[int] = set()
        #: Result of the continuous check triggered by the most recent
        #: blocking ``lock`` call (None when it did not run).
        self.last_detection: Optional["DetectionResult"] = None
        #: Incremental graph maintainer (``track_graph=True``): kept in
        #: sync on every operation so :meth:`graph` is O(edges) instead
        #: of a rebuild from the lock table.
        self.tracker = None
        if track_graph:
            from ..core.incremental import IncrementalHWTWBG

            self.tracker = IncrementalHWTWBG(self.table)

    # -- the locking surface ------------------------------------------------

    def lock(self, tid: int, rid: str, mode: LockMode) -> scheduler.RequestOutcome:
        """Request (or convert to) ``mode`` on ``rid`` for ``tid``.

        Returns the request outcome.  Under continuous detection a
        blocking request may be resolved on the spot; the resolution's
        events are appended to the outcome via :attr:`last_detection`.
        """
        if tid in self._aborted:
            raise LockTableError(
                "transaction {} was aborted and cannot lock".format(tid)
            )
        outcome = scheduler.request(self.table, tid, rid, mode)
        self._publish(outcome.event)
        self.last_detection = None
        if not outcome.granted:
            self.last_detection = self.policy.on_block(self, tid, rid, mode)
        if self.last_detection is not None:
            self._absorb(self.last_detection)
            if self.tracker is not None:
                # Resolution may have touched arbitrary resources.
                self.tracker.refresh_all()
        elif self.tracker is not None:
            self.tracker.refresh(rid)
        return outcome

    def finish(self, tid: int) -> List[Granted]:
        """End ``tid`` (commit or abort): release everything it holds or
        waits for and sweep the freed resources.  Returns the grants the
        release enabled."""
        affected = self.table.held_by(tid)
        blocked_rid = self.table.blocked_at(tid)
        if blocked_rid is not None:
            affected.add(blocked_rid)
        grants = scheduler.release_all(self.table, tid)
        self.costs.forget(tid)
        self._aborted.discard(tid)
        self._publish(*grants)
        if self.tracker is not None:
            self.tracker.refresh_many(affected)
        return grants

    # -- deadlock handling ------------------------------------------------------

    def detect(self) -> DetectionResult:
        """One periodic detection-resolution pass (Steps 1–3)."""
        from time import perf_counter

        self.policy.pre_pass(list(self.table.resources()))
        started = perf_counter()
        result = self._periodic.run()
        self.policy.observe_pass(result, perf_counter() - started)
        self._absorb(result)
        if self.tracker is not None:
            self.tracker.refresh_all()
        return result

    def _absorb(self, result: DetectionResult) -> None:
        """Fold a detection result into the manager's view: remember the
        aborted victims (their further requests are rejected) and log the
        events."""
        reason = getattr(result, "abort_reason", "deadlock victim")
        for tid in result.aborted:
            self._aborted.add(tid)
            self._publish(Aborted(tid, reason))
        self._publish(*result.repositions)
        self._publish(*result.grants)

    def _publish(self, *events) -> None:
        """Append events to the cumulative log and notify the listener."""
        for event in events:
            self.log.append(event)
            if self.listener is not None:
                self.listener(event)

    # -- introspection --------------------------------------------------------

    def graph(self) -> HWTWBG:
        """The current H/W-TWBG — served by the incremental tracker when
        ``track_graph=True``, rebuilt from the lock table otherwise."""
        if self.tracker is not None:
            return self.tracker.graph()
        return build_graph(self.table.resources())

    def is_blocked(self, tid: int) -> bool:
        return self.table.is_blocked(tid)

    def was_aborted(self, tid: int) -> bool:
        """True if a detector chose ``tid`` as victim and the transaction
        layer has not yet acknowledged with :meth:`finish`."""
        return tid in self._aborted

    def holding(self, tid: int) -> Dict[str, LockMode]:
        """Map of resource id to granted mode for ``tid``."""
        held = {}
        for rid in self.table.held_by(tid):
            entry = self.table.existing(rid).holder_entry(tid)
            if entry is not None:
                held[rid] = entry.granted
        return held

    def deadlocked(self) -> bool:
        """True iff the system is currently deadlocked (Theorem 1:
        equivalent to a cycle in the H/W-TWBG)."""
        return self.graph().has_cycle()

    def __str__(self) -> str:
        return str(self.table)
