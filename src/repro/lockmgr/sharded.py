"""Sharded lock manager: a partitioned RST with a cross-shard detector.

The paper's periodic scheme deliberately decouples *blocking* (RST
queue maintenance at request time, Section 3) from *detection* (a
periodic pass that rebuilds the H/W-TWBG from RST/TST snapshots,
Section 5).  Nothing in the request path ever looks at another
resource, so per-resource state does not need a global mutex — only
the detector needs a whole-system view, and it only needs one that is
*consistent enough* for cycles (which are stable: a deadlocked
transaction stays deadlocked until a resolution acts).

This module exploits that split:

* :class:`ShardedLockCore` partitions the lock table by a stable hash
  of the resource id into N independent shards — each owns its
  :class:`~repro.lockmgr.lock_table.LockTable`, its re-entrant mutex,
  its mutation epoch and its waiter conditions — with a router in
  front and transaction-side state (aborted set, per-transaction
  shard-affinity map, shared cost table) kept under one small lock.
* The periodic pass snapshots each shard briefly *in shard order*
  (epoch-stamped deep copies), merges the per-shard wait edges into
  one global RST ordered by the global first-lock sequence, runs the
  **unchanged** Section-5 machinery (:class:`PeriodicDetector`: TST
  walk, TRRP, TDR-1/TDR-2) on the merged snapshot, and routes the
  resolutions back to the owning shards — confirming each victim is
  still blocked where the snapshot saw it and re-validating each
  TDR-2 repositioning against the live queue (stale ones are skipped
  and counted, never guessed at).
* :class:`ShardedLockManager` is the blocking, thread-safe facade over
  the core (same surface as
  :class:`~repro.lockmgr.concurrent.ConcurrentLockManager`, which is
  now its 1-shard special case).

Why routing back is sound: every cycle vertex is blocked, so a victim
is a transaction parked in ``acquire`` — marking it aborted and
releasing its entries under the owning shards' mutexes can never yank
locks from under a running thread.  A repositioning that still matches
the head of the live queue is a pure reorder of waiters, which is
exactly what TDR-2 proved safe on the snapshot.

Lock ordering (deadlock freedom of the manager itself): a shard mutex
may be held when the transaction-side lock is taken, never the other
way round; shard mutexes are only ever taken one at a time (the
detector visits shards sequentially); the detector serialization lock
is taken before any shard mutex.

Equivalence with the monolithic manager: the Step-2 walk visits
resources in the RST's first-lock order, so the merged snapshot must
present resources in the *global* first-lock order, not shard
concatenation order — the router keeps a global sequence number per
resource, re-assigned when a resource re-enters a shard table (the
exact semantics of a Python dict delete + re-insert, which is what the
monolithic table does via ``drop_if_free``).  With that ordering the
merged RST is byte-for-byte the monolithic RST, so a quiescent pass
finds the same cycles, chooses the same victims and applies the same
repositionings — the property the sharded-vs-monolithic equivalence
oracle in :mod:`repro.check.sharded` pins down.

``REPRO_SHARDS`` in the environment sets the default shard count for
components constructed with ``shards=None`` (the CI variant runs the
whole suite at 4 shards this way).  Continuous detection needs a
rooted check on every block — a whole-graph operation — so it is only
supported single-shard; a continuous manager silently resolves to one
shard rather than failing under an environment-driven default.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, Iterator, List, Optional, Set

from ..core.errors import (
    LockTableError,
    TransactionAborted,
    UnknownResourceError,
)
from ..core.hw_twbg import HWTWBG, build_graph
from ..core.modes import LockMode
from ..core.requests import ResourceState
from ..core.victim import CostTable, RepositionCandidate
from .events import Aborted, Granted, Repositioned
from .lock_table import LockTable
from .partition import partition_of
from . import scheduler

#: Environment variable consulted when ``shards=None``.
SHARDS_ENV = "REPRO_SHARDS"


def env_default_shards() -> int:
    """The environment-driven default shard count (1 when unset)."""
    raw = os.environ.get(SHARDS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def resolve_shard_count(
    shards: Optional[int], continuous: bool = False
) -> int:
    """Resolve a ``shards`` argument: ``None`` means the environment
    default, and continuous detection forces a single shard (the rooted
    at-block check is a whole-graph operation).  Overriding an explicit
    multi-shard request this way warns instead of failing — the request
    may come from an environment-wide ``REPRO_SHARDS`` default that a
    continuous component legitimately cannot honour."""
    count = env_default_shards() if shards is None else max(1, int(shards))
    if continuous:
        if count > 1:
            source = (
                "{}={}".format(SHARDS_ENV, os.environ.get(SHARDS_ENV))
                if shards is None
                else "shards={}".format(shards)
            )
            warnings.warn(
                "continuous detection needs a whole-graph rooted check "
                "and forces shards=1; ignoring {}".format(source),
                RuntimeWarning,
                stacklevel=2,
            )
        return 1
    return count


def shard_of(rid: str, shards: int) -> int:
    """Stable router: crc32 of the resource id, modulo the shard count
    (the shared :func:`~repro.lockmgr.partition.partition_of`, which the
    cluster's worker router delegates to as well)."""
    return partition_of(rid, shards)


def _default_wait(
    condition: threading.Condition, timeout: Optional[float]
) -> bool:
    return condition.wait(timeout=timeout)


class LockShard:
    """One partition: a lock table, its mutex, epoch and waiter conditions.

    The mutex is re-entrant so an injected ``wait_fn`` (the explorer's
    interleaving seam) may call back into the manager while the facade
    already holds the shard.  ``epoch`` counts mutations; the detector
    stamps its snapshots with it to measure drift between snapshot and
    resolution time.
    """

    __slots__ = ("index", "table", "mutex", "epoch", "wakeups")

    def __init__(self, index: int) -> None:
        self.index = index
        self.table = LockTable()
        self.mutex = threading.RLock()
        self.epoch = 0
        self.wakeups: Dict[int, threading.Condition] = {}


@dataclass
class ShardedPass:
    """What one cross-shard periodic pass did, beyond the detection
    result itself (attached as ``DetectionResult.sharding``)."""

    shards: int
    #: Seconds each shard's snapshot held that shard's mutex.
    snapshot_seconds: List[float] = field(default_factory=list)
    #: Resources in the merged snapshot.
    merged_resources: int = 0
    #: Cycles whose blocked resources span more than one shard.
    cross_shard_cycles: int = 0
    #: Victims no longer blocked where the snapshot saw them (spared).
    stale_victims: int = 0
    #: TDR-2 repositionings whose live queue no longer matched.
    stale_repositions: int = 0
    #: Shards mutated between their snapshot and the resolution phase.
    epoch_drift: int = 0


class MergedTableView:
    """A read-only, LockTable-shaped view across every shard.

    Serves the introspection surface (oracles, admin payloads, the
    structural verifier) when the core has more than one shard; all
    reads collect per-shard state briefly under each shard's mutex and
    present resources in global first-lock order, mirroring the
    iteration order a monolithic table would have.  Mutation goes
    through the core, never through this view.
    """

    def __init__(self, core: "ShardedLockCore") -> None:
        self._core = core

    def _states(self) -> List[ResourceState]:
        states: List[ResourceState] = []
        for shard in self._core.shards:
            with shard.mutex:
                states.extend(shard.table.resources())
        order = self._core.sequence_map()
        fallback = len(order)
        states.sort(key=lambda state: order.get(state.rid, fallback))
        return states

    # -- resource access ------------------------------------------------

    def resources(self) -> Iterator[ResourceState]:
        return iter(self._states())

    def resource_ids(self) -> List[str]:
        return [state.rid for state in self._states()]

    def existing(self, rid: str) -> ResourceState:
        return self._core.shard_for(rid).table.existing(rid)

    def __contains__(self, rid: str) -> bool:
        return rid in self._core.shard_for(rid).table

    def __len__(self) -> int:
        return sum(len(shard.table) for shard in self._core.shards)

    # -- transaction-side indexes ---------------------------------------

    def held_by(self, tid: int) -> Set[str]:
        held: Set[str] = set()
        for shard in self._core.shards:
            held.update(shard.table.held_by(tid))
        return held

    def blocked_at(self, tid: int) -> Optional[str]:
        for shard in self._core.shards:
            rid = shard.table.blocked_at(tid)
            if rid is not None:
                return rid
        return None

    def is_blocked(self, tid: int) -> bool:
        return self.blocked_at(tid) is not None

    def blocked_in_queue(self, tid: int) -> bool:
        for shard in self._core.shards:
            if shard.table.is_blocked(tid):
                return shard.table.blocked_in_queue(tid)
        return False

    def blocked_tids(self) -> List[int]:
        tids: List[int] = []
        for shard in self._core.shards:
            tids.extend(shard.table.blocked_tids())
        return tids

    def blocked_count(self) -> int:
        return sum(
            shard.table.blocked_count() for shard in self._core.shards
        )

    def active_tids(self) -> Set[int]:
        tids: Set[int] = set()
        for shard in self._core.shards:
            tids.update(shard.table.active_tids())
        return tids

    # -- presentation ----------------------------------------------------

    def snapshot(self) -> List[ResourceState]:
        return [state.copy() for state in self._states()]

    def __str__(self) -> str:
        return "\n".join(str(state) for state in self._states())


class ShardedLockCore:
    """The partitioned lock manager core: LockManager's surface, N shards.

    Drop-in for :class:`~repro.lockmgr.manager.LockManager` wherever the
    manager is driven by one writer at a time (the service layer, the
    explorer); under free threading each operation synchronizes on the
    owning shard only.  With ``shards=1`` every code path below reduces
    to the monolithic manager's — same table, same detectors, same
    events in the same order — which is what keeps the existing test
    suite binding.

    ``listener`` (when used multi-shard) must be thread-safe: events
    from different shards may be published concurrently.
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        costs: Optional[CostTable] = None,
        continuous: bool = False,
        listener: Optional[Callable[[object], None]] = None,
        sequence_source: Optional[Callable[[], int]] = None,
        policy=None,
    ) -> None:
        from ..core.detection import PeriodicDetector
        from ..policy import resolve_policy

        resolved = resolve_policy(policy, continuous=continuous, env=True)
        count = resolve_shard_count(shards, continuous=resolved.continuous)
        self.shards: List[LockShard] = [LockShard(i) for i in range(count)]
        self.costs = costs if costs is not None else CostTable()
        #: The detection policy: block-time decisions and pass hooks.
        #: Like ``REPRO_SHARDS`` for the shard count, ``REPRO_POLICY``
        #: supplies the default when ``policy=None``.
        self.policy = resolved.bind(self)
        self.continuous = self.policy.continuous
        self.log: List[object] = []
        self.listener = listener
        self.last_detection = None
        self._aborted: Set[int] = set()
        #: tid -> indexes of the shards the transaction has touched;
        #: bounds every transaction-side scan to the shards that can
        #: possibly know the transaction.
        self._affinity: Dict[int, Set[int]] = {}
        #: rid -> global first-lock sequence (see module docstring).
        #: ``sequence_source`` swaps the local counter for an external
        #: one — a cluster shares a cross-process counter so merged
        #: worker snapshots keep the *cluster-wide* first-lock order.
        self._seq: Dict[str, int] = {}
        self._next_seq = 0
        self._sequence_source = sequence_source
        self._txn_lock = threading.Lock()
        self._detect_lock = threading.RLock()
        self._periodic = (
            PeriodicDetector(self.shards[0].table, self.costs)
            if count == 1
            else None
        )

    # -- routing ---------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shards)

    def shard_index(self, rid: str) -> int:
        """Which shard owns ``rid`` (stable across the core's lifetime)."""
        return shard_of(rid, len(self.shards))

    def shard_for(self, rid: str) -> LockShard:
        return self.shards[self.shard_index(rid)]

    def sequence_map(self) -> Dict[str, int]:
        """Copy of the global first-lock order (rid -> sequence)."""
        with self._txn_lock:
            return dict(self._seq)

    def sequence_of(self, rid: str) -> Optional[int]:
        """The first-lock sequence number of ``rid`` (None if never
        locked); journaled so replay can re-assert the same order."""
        with self._txn_lock:
            return self._seq.get(rid)

    def restore_sequence(self, rid: str, seq: Optional[int]) -> None:
        """Force ``rid``'s first-lock sequence to the journaled value.

        Journal replay calls :meth:`lock` (which draws a *fresh*
        number) and then overwrites it with the recorded one, so the
        rebuilt merged-table iteration order is byte-identical to the
        pre-crash table even when a cluster sibling advanced the shared
        counter in the meantime.  With the local counter, the next
        fresh draw is bumped past every restored value.
        """
        if seq is None:
            return
        with self._txn_lock:
            self._seq[rid] = int(seq)
            if self._sequence_source is None:
                self._next_seq = max(self._next_seq, int(seq) + 1)

    @property
    def table(self):
        """The RST: the real table single-shard, a merged read-only view
        otherwise."""
        if len(self.shards) == 1:
            return self.shards[0].table
        return MergedTableView(self)

    # -- the locking surface ---------------------------------------------

    def lock(self, tid: int, rid: str, mode: LockMode) -> scheduler.RequestOutcome:
        """Request (or convert to) ``mode`` on ``rid`` for ``tid``; the
        sharded counterpart of :meth:`LockManager.lock`."""
        shard = self.shard_for(rid)
        with shard.mutex:
            with self._txn_lock:
                if tid in self._aborted:
                    raise LockTableError(
                        "transaction {} was aborted and cannot lock".format(
                            tid
                        )
                    )
                if rid not in shard.table:
                    # First lock (or re-lock after drop_if_free): the
                    # resource re-enters the global iteration order at
                    # the end, exactly like a dict delete + re-insert.
                    if self._sequence_source is not None:
                        self._seq[rid] = int(self._sequence_source())
                    else:
                        self._seq[rid] = self._next_seq
                        self._next_seq += 1
                self._affinity.setdefault(tid, set()).add(shard.index)
            blocked_rid = self.blocked_at(tid)
            if blocked_rid is not None and (
                self.shard_index(blocked_rid) != shard.index
            ):
                # Axiom 1 across shards: the shard table would only
                # catch a second wait registered on *itself*.
                raise LockTableError(
                    "transaction {} is already blocked at {} and cannot "
                    "also wait at {}".format(tid, blocked_rid, rid)
                )
            outcome = scheduler.request(shard.table, tid, rid, mode)
            shard.epoch += 1
            self._publish(outcome.event)
            self.last_detection = None
            if not outcome.granted:
                self.last_detection = self.policy.on_block(
                    self, tid, rid, mode
                )
                if self.last_detection is not None:
                    self._absorb(self.last_detection)
            return outcome

    def finish(self, tid: int) -> List[Granted]:
        """End ``tid`` (commit or abort): release everything it holds or
        waits for on every shard it touched, strict 2PL."""
        with self._txn_lock:
            indexes = sorted(self._affinity.pop(tid, ()))
            self._aborted.discard(tid)
        grants: List[Granted] = []
        for index in indexes:
            shard = self.shards[index]
            with shard.mutex:
                grants.extend(scheduler.release_all(shard.table, tid))
                shard.epoch += 1
        self.costs.forget(tid)
        self._publish(*grants)
        return grants

    # -- deadlock handling ------------------------------------------------

    def detect(self):
        """One periodic detection-resolution pass over every shard."""
        with self._detect_lock:
            if self._periodic is not None:
                # Single shard: the monolithic fast path mutates the
                # real table, so it runs under that table's mutex — the
                # whole-pass stall the multi-shard protocol exists to
                # avoid.
                shard = self.shards[0]
                with shard.mutex:
                    self.policy.pre_pass(list(shard.table.resources()))
                    started = perf_counter()
                    result = self._periodic.run()
                    self.policy.observe_pass(
                        result, perf_counter() - started
                    )
                    if result.deadlock_found:
                        shard.epoch += 1
                    self._absorb(result)
                    return result
            return self._detect_sharded()

    def _detect_sharded(self):
        from ..core.detection import DetectionResult, PeriodicDetector

        info = ShardedPass(
            shards=len(self.shards),
            snapshot_seconds=[0.0] * len(self.shards),
        )
        # Phase 1 — snapshot: lock each shard briefly, in shard order.
        states: List[ResourceState] = []
        epochs: List[int] = []
        for shard in self.shards:
            started = perf_counter()
            with shard.mutex:
                states.extend(shard.table.snapshot())
                epochs.append(shard.epoch)
            info.snapshot_seconds[shard.index] = perf_counter() - started
        # Phase 2 — merge: one RST in global first-lock order.
        order = self.sequence_map()
        fallback = len(order)
        states.sort(key=lambda state: order.get(state.rid, fallback))
        merged = LockTable()
        for state in states:
            merged.install(state)
        info.merged_resources = len(states)
        blocked_at_snapshot = {
            tid: merged.blocked_at(tid) for tid in merged.blocked_tids()
        }
        # Phase 3 — detect: the unchanged Section-5 machinery.
        self.policy.pre_pass(states)
        started = perf_counter()
        staged = PeriodicDetector(merged, self.costs).run()
        self.policy.observe_pass(staged, perf_counter() - started)
        for resolution in staged.resolutions:
            rids = {
                blocked_at_snapshot.get(tid) for tid in resolution.cycle
            } - {None}
            if len({self.shard_index(rid) for rid in rids}) > 1:
                info.cross_shard_cycles += 1
        info.epoch_drift = sum(
            1
            for shard, stamped in zip(self.shards, epochs)
            if shard.epoch != stamped
        )
        # Phase 4 — resolve: route everything back to the owning shards.
        result = DetectionResult(
            spared=list(staged.spared),
            resolutions=list(staged.resolutions),
            stats=staged.stats,
            sharding=info,
        )
        self._apply_staged(staged, blocked_at_snapshot, result, info)
        reason = getattr(result, "abort_reason", "deadlock victim")
        for tid in result.aborted:
            self._publish(Aborted(tid, reason))
        self._publish(*result.repositions)
        self._publish(*result.grants)
        return result

    def _apply_staged(self, staged, blocked_at_snapshot, result, info):
        """Replay the staged resolutions against the live shards, in the
        order the detector produced them: repositionings (Step 2), then
        victim releases (Step 3), then change-list sweeps.  Built on the
        same resolution primitives a cluster coordinator uses to route a
        merged snapshot's resolutions to worker cores over the wire."""
        applied_rids: List[str] = []
        for resolution in staged.resolutions:
            chosen = resolution.chosen
            if not isinstance(chosen, RepositionCandidate):
                continue
            event = self.apply_reposition(
                chosen.rid, chosen.av, chosen.st, publish=False
            )
            if event is None:
                # The live queue moved on since the snapshot; the
                # repositioning no longer matches and is dropped.
                info.stale_repositions += 1
                continue
            applied_rids.append(chosen.rid)
            result.repositions.append(event)
        for tid in staged.aborted:
            confirmed, grants = self.abort_victim(
                tid, blocked_at_snapshot.get(tid), publish=False
            )
            if not confirmed:
                # Granted (or finished) since the snapshot — no longer
                # deadlocked, so aborting it would be waste: spare it,
                # exactly like Step 3 spares victims an earlier release
                # already granted.
                info.stale_victims += 1
                result.spared.append(tid)
                continue
            result.grants.extend(grants)
            result.aborted.append(tid)
        for rid in applied_rids:
            result.grants.extend(self.sweep_resource(rid, publish=False))

    # -- resolution primitives (shared with the cluster coordinator) -------

    def snapshot_payload(self) -> Dict[str, object]:
        """Serialize this core's RST slice for a cluster coordinator.

        Epoch-stamped deep copies of every shard (each held briefly
        under its own mutex), presented in this core's first-lock order
        with the live resources' sequence numbers attached, so a
        coordinator can merge several workers' slices into one global
        RST ordered by the cluster-wide first-lock sequence (workers
        share a sequence counter via ``sequence_source``).
        """
        from ..core.serialize import FORMAT_VERSION, state_to_dict

        started = perf_counter()
        states: List[ResourceState] = []
        epochs: List[int] = []
        for shard in self.shards:
            with shard.mutex:
                states.extend(shard.table.snapshot())
                epochs.append(shard.epoch)
        order = self.sequence_map()
        fallback = len(order)
        states.sort(key=lambda state: order.get(state.rid, fallback))
        return {
            "v": FORMAT_VERSION,
            "table": {
                "v": FORMAT_VERSION,
                "resources": [state_to_dict(state) for state in states],
            },
            "sequence": {
                state.rid: order[state.rid]
                for state in states
                if state.rid in order
            },
            "epochs": epochs,
            "seconds": perf_counter() - started,
        }

    def abort_victim(
        self,
        tid: int,
        expected_rid: Optional[str],
        publish: bool = True,
    ):
        """Confirm-and-abort one deadlock victim chosen from a snapshot.

        The staleness re-check of the periodic protocol: ``tid`` must
        still be blocked at ``expected_rid`` (where the snapshot saw
        it) or the victim is stale and left untouched.  When confirmed,
        marks the transaction aborted and frees everything it holds or
        waits for on this core.  Returns ``(confirmed, grants)``.
        """
        if expected_rid is None:
            return False, []
        shard = self.shard_for(expected_rid)
        with shard.mutex:
            if shard.table.blocked_at(tid) != expected_rid:
                return False, []
            with self._txn_lock:
                if tid in self._aborted:
                    return False, []
                self._aborted.add(tid)
        grants = self._release_as_victim(tid)
        if publish:
            self._publish(Aborted(tid, "deadlock victim"))
            self._publish(*grants)
        return True, grants

    def release_victim(self, tid: int, publish: bool = True) -> List[Granted]:
        """Free a victim's entries on this core without re-confirming.

        The cross-process counterpart of the victim-release loop: when a
        cluster victim blocks on *another* worker, that worker confirms
        via :meth:`abort_victim` and every other worker holding the
        victim's locks frees them through here.
        """
        with self._txn_lock:
            self._aborted.add(tid)
        grants = self._release_as_victim(tid)
        if publish:
            self._publish(*grants)
        return grants

    def _release_as_victim(self, tid: int) -> List[Granted]:
        """Release everything ``tid`` holds or waits for, keeping the
        affinity entry so the owner's eventual ``finish`` still routes."""
        with self._txn_lock:
            indexes = sorted(self._affinity.get(tid, ()))
        grants: List[Granted] = []
        for index in indexes:
            shard = self.shards[index]
            with shard.mutex:
                grants.extend(scheduler.release_all(shard.table, tid))
                shard.epoch += 1
        self.costs.forget(tid)
        return grants

    def apply_reposition(
        self, rid: str, av, st, publish: bool = True
    ) -> Optional[Repositioned]:
        """Re-validate and apply one staged TDR-2 repositioning against
        the live queue of ``rid``.  Returns the event, or None when the
        live queue moved on since the snapshot (the stale case)."""
        shard = self.shard_for(rid)
        with shard.mutex:
            try:
                scheduler.reposition_queue(
                    shard.table, rid, list(av), list(st)
                )
            except (LockTableError, UnknownResourceError):
                return None
            shard.epoch += 1
        event = Repositioned(rid=rid, delayed=tuple(st))
        if publish:
            self._publish(event)
        return event

    def sweep_resource(self, rid: str, publish: bool = True) -> List[Granted]:
        """Run the change-list sweep over one repositioned resource."""
        shard = self.shard_for(rid)
        with shard.mutex:
            if rid not in shard.table:
                return []
            events = scheduler.sweep(shard.table, rid)
            if events:
                shard.epoch += 1
        if publish:
            self._publish(*events)
        return events

    def _absorb(self, result) -> None:
        reason = getattr(result, "abort_reason", "deadlock victim")
        for tid in result.aborted:
            with self._txn_lock:
                self._aborted.add(tid)
            self._publish(Aborted(tid, reason))
        self._publish(*result.repositions)
        self._publish(*result.grants)

    def _publish(self, *events) -> None:
        for event in events:
            self.log.append(event)
            if self.listener is not None:
                self.listener(event)

    # -- introspection ----------------------------------------------------

    def graph(self) -> HWTWBG:
        """The current global H/W-TWBG, built from a merged snapshot."""
        return build_graph(self.table.snapshot())

    def blocked_at(self, tid: int) -> Optional[str]:
        with self._txn_lock:
            indexes = sorted(self._affinity.get(tid, ()))
        for index in indexes:
            rid = self.shards[index].table.blocked_at(tid)
            if rid is not None:
                return rid
        return None

    def is_blocked(self, tid: int) -> bool:
        return self.blocked_at(tid) is not None

    def was_aborted(self, tid: int) -> bool:
        return tid in self._aborted

    def holding(self, tid: int) -> Dict[str, LockMode]:
        with self._txn_lock:
            indexes = sorted(self._affinity.get(tid, ()))
        held: Dict[str, LockMode] = {}
        for index in indexes:
            shard = self.shards[index]
            with shard.mutex:
                for rid in shard.table.held_by(tid):
                    entry = shard.table.existing(rid).holder_entry(tid)
                    if entry is not None:
                        held[rid] = entry.granted
        return held

    def deadlocked(self) -> bool:
        return self.graph().has_cycle()

    def shard_summaries(self) -> List[Dict[str, int]]:
        """Per-shard load figures for admin payloads and metrics."""
        rows = []
        for shard in self.shards:
            with shard.mutex:
                rows.append({
                    "shard": shard.index,
                    "resources": len(shard.table),
                    "blocked": shard.table.blocked_count(),
                    "queued": sum(
                        len(state.queue)
                        for state in shard.table.resources()
                    ),
                    "epoch": shard.epoch,
                })
        return rows

    def __str__(self) -> str:
        return str(self.table)


class ShardedLockManager:
    """Blocking, thread-safe front end over :class:`ShardedLockCore`.

    The surface of
    :class:`~repro.lockmgr.concurrent.ConcurrentLockManager` —
    ``acquire`` parks the calling thread on the owning shard's
    condition until grant, timeout or victimization
    (:class:`TransactionAborted`) — but contention is per shard:
    threads touching resources on different shards never contend on a
    mutex, which is the whole point of the refactor.

    ``wait_fn`` remains the single interleaving seam (see the
    ConcurrentLockManager docstring); it is called with the *owning
    shard's* mutex held.
    """

    def __init__(
        self,
        shards: Optional[int] = None,
        costs: Optional[CostTable] = None,
        continuous: bool = False,
        period: Optional[float] = None,
        wait_fn: Optional[
            Callable[[threading.Condition, Optional[float]], bool]
        ] = None,
        listener: Optional[Callable[[object], None]] = None,
        policy=None,
    ) -> None:
        self._core = ShardedLockCore(
            shards=shards,
            costs=costs,
            continuous=continuous,
            listener=listener,
            policy=policy,
        )
        self._wait_fn = wait_fn if wait_fn is not None else _default_wait
        #: tid -> the shard whose condition the transaction waits on.
        self._wait_shard: Dict[int, LockShard] = {}
        self._stop = threading.Event()
        self._detector_thread: Optional[threading.Thread] = None
        # A deadlock-free policy (the nowait lane) has nothing for a
        # periodic daemon to find; don't spin one up.
        if period is not None and self._core.policy.wants_periodic:
            self._detector_thread = threading.Thread(
                target=self._detector_loop,
                args=(period,),
                name="repro-deadlock-detector",
                daemon=True,
            )
            self._detector_thread.start()

    @property
    def shard_count(self) -> int:
        return self._core.shard_count

    # -- locking -----------------------------------------------------------

    def acquire(
        self,
        tid: int,
        rid: str,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> bool:
        """Acquire (or convert to) ``mode`` on ``rid``, blocking the
        calling thread until granted.  Returns False only on timeout
        (the request stays queued); raises :class:`TransactionAborted`
        when a detection pass victimized the caller."""
        core = self._core
        shard = core.shard_for(rid)
        with shard.mutex:
            if core.was_aborted(tid):
                raise TransactionAborted(tid)
            if not core.is_blocked(tid):
                outcome = core.lock(tid, rid, mode)
                if outcome.granted:
                    return True
                if core.last_detection is not None:
                    self._service(core.last_detection)
                    if core.was_aborted(tid):
                        raise TransactionAborted(tid)
                    if not core.is_blocked(tid):
                        return True
            condition = shard.wakeups.setdefault(
                tid, threading.Condition(shard.mutex)
            )
            self._wait_shard[tid] = shard
            while True:
                woken = self._wait_fn(condition, timeout)
                # State first, wait result second: a wake-up racing the
                # timeout must never report a timeout after the grant
                # nor swallow an abort.
                if core.was_aborted(tid):
                    raise TransactionAborted(tid)
                if not core.is_blocked(tid):
                    return True
                if not woken:
                    return False  # timed out; request still queued

    def commit(self, tid: int) -> None:
        """Release everything ``tid`` holds and wake the grantees."""
        grants = self._core.finish(tid)
        shard = self._wait_shard.pop(tid, None)
        if shard is None:
            shard = self._find_wait_shard(tid)
        if shard is not None:
            with shard.mutex:
                shard.wakeups.pop(tid, None)
        self._notify(event.tid for event in grants)

    def abort(self, tid: int) -> None:
        """Abort ``tid``: identical release path (strict 2PL)."""
        self.commit(tid)

    # -- detection ---------------------------------------------------------

    def detect(self):
        """Run one cross-shard periodic pass now (also what the daemon
        thread runs every ``period`` seconds)."""
        result = self._core.detect()
        self._service(result)
        return result

    def _detector_loop(self, period: float) -> None:
        # The policy may retune the interval between passes (the
        # adaptive controller); consult it every iteration.
        while True:
            interval = self._core.policy.current_period(period)
            if interval is None:
                interval = period
            if self._stop.wait(interval):
                return
            self.detect()

    def _service(self, result) -> None:
        """Wake victims (to observe their abort) and grantees."""
        self._notify(result.aborted)
        self._notify(event.tid for event in result.grants)

    def _notify(self, tids) -> None:
        for tid in tids:
            shard = self._wait_shard.get(tid)
            if shard is None:
                shard = self._find_wait_shard(tid)
            if shard is None:
                continue
            condition = shard.wakeups.get(tid)
            if condition is not None:
                with shard.mutex:
                    condition.notify_all()

    def _find_wait_shard(self, tid: int) -> Optional[LockShard]:
        """Fallback lookup for conditions registered outside
        :meth:`acquire` (facade subclasses in tests do this)."""
        for shard in self._core.shards:
            if tid in shard.wakeups:
                return shard
        return None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop the background detector thread (if any)."""
        self._stop.set()
        if self._detector_thread is not None:
            self._detector_thread.join(timeout=5.0)

    def __enter__(self) -> "ShardedLockManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def holding(self, tid: int) -> Dict[str, LockMode]:
        return self._core.holding(tid)

    def deadlocked(self) -> bool:
        return self._core.deadlocked()

    def shard_summaries(self) -> List[Dict[str, int]]:
        return self._core.shard_summaries()

    def snapshot(self) -> List[str]:
        """Render the merged table (debugging)."""
        return str(self._core).splitlines()
