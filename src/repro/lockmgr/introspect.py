"""Operator-facing introspection over a lock table.

The functions here answer the questions a DBA (or a test author) asks a
live lock manager:

* :func:`explain_block` — *why* is this transaction not running?  Walks
  the waited-by structure and produces the direct blockers, the kind of
  wait (conversion vs queue, and queue position), and whether the
  transaction currently sits on a deadlock cycle.
* :func:`wait_graph_summary` — per-transaction fan-in/fan-out of the
  H/W-TWBG, the hub view of contention.
* :func:`render_report` — a text report of the whole table: resources,
  holders, waiters, blockers, cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.hw_twbg import build_graph
from ..core.modes import LockMode
from .lock_table import LockTable


@dataclass
class WaitSite:
    """One place a transaction waits: a blocked conversion (holder
    re-requesting an incompatible mode) or a queued request.  The
    ``queue_position`` is read live from the queue at explain time, so
    it stays correct after a TDR-2 repositioning reorders the queue."""

    rid: str
    mode: Optional[LockMode]
    conversion: bool
    queue_position: Optional[int] = None
    direct_blockers: List[int] = field(default_factory=list)

    def __str__(self) -> str:
        kind = (
            "converting to {}".format(self.mode.name if self.mode else "?")
            if self.conversion
            else "queued (position {}) for {}".format(
                self.queue_position,
                self.mode.name if self.mode else "?",
            )
        )
        return "{} — {}".format(self.rid, kind)


@dataclass
class BlockExplanation:
    """Everything known about why one transaction waits.

    The top-level fields describe the *primary* wait site (the one the
    lock table's blocked index points at, under Axiom 1 the only one);
    ``waits`` lists every site found by scanning the resource states
    directly, so an inconsistent table — a transaction blocked on a
    conversion while also queued elsewhere — still reports both waits.
    """

    tid: int
    blocked: bool
    rid: Optional[str] = None
    mode: Optional[LockMode] = None
    conversion: bool = False
    queue_position: Optional[int] = None
    direct_blockers: List[int] = field(default_factory=list)
    on_deadlock_cycle: bool = False
    cycle: Optional[List[int]] = None
    waits: List[WaitSite] = field(default_factory=list)

    def __str__(self) -> str:
        if not self.blocked:
            return "T{} is not blocked".format(self.tid)
        kind = (
            "converting to {}".format(self.mode.name)
            if self.conversion
            else "queued (position {}) for {}".format(
                self.queue_position, self.mode.name
            )
        )
        text = "T{} is blocked at {} — {}; waiting for {}".format(
            self.tid,
            self.rid,
            kind,
            ", ".join("T{}".format(t) for t in self.direct_blockers) or "-",
        )
        extra = [site for site in self.waits if site.rid != self.rid]
        if extra:
            text += "; also waiting at {}".format(
                ", ".join(str(site) for site in extra)
            )
        if self.on_deadlock_cycle:
            text += "; DEADLOCKED with cycle {}".format(self.cycle)
        return text


def explain_block(table: LockTable, tid: int) -> BlockExplanation:
    """Explain the wait state of ``tid`` (see module docstring).

    Wait sites come from scanning the resource states themselves rather
    than trusting the blocked index, so the explanation is a ground-truth
    report even when the index and the states disagree."""
    from ..baselines.jiang import direct_blockers

    sites: List[WaitSite] = []
    for state in table.resources():
        holder = state.holder_entry(tid)
        if holder is not None and holder.is_blocked:
            sites.append(
                WaitSite(
                    rid=state.rid,
                    mode=holder.blocked,
                    conversion=True,
                    direct_blockers=sorted(direct_blockers(state, tid)),
                )
            )
        entry = state.queue_entry(tid)
        if entry is not None:
            sites.append(
                WaitSite(
                    rid=state.rid,
                    mode=entry.blocked,
                    conversion=False,
                    queue_position=state.queue_position(tid),
                    direct_blockers=sorted(direct_blockers(state, tid)),
                )
            )
    if not sites:
        return BlockExplanation(tid=tid, blocked=False)

    indexed = table.blocked_at(tid)
    primary = next(
        (site for site in sites if site.rid == indexed), sites[0]
    )
    explanation = BlockExplanation(
        tid=tid,
        blocked=True,
        rid=primary.rid,
        mode=primary.mode,
        conversion=primary.conversion,
        queue_position=primary.queue_position,
        direct_blockers=primary.direct_blockers,
        waits=sites,
    )

    graph = build_graph(table.snapshot())
    for cycle in graph.elementary_cycles():
        if tid in cycle:
            explanation.on_deadlock_cycle = True
            explanation.cycle = cycle
            break
    return explanation


def wait_graph_summary(table: LockTable) -> Dict[int, Dict[str, int]]:
    """Per-transaction contention summary: ``blocks`` (how many wait on
    it, its waited-by fan-out) and ``waits_on`` (its fan-in)."""
    graph = build_graph(table.snapshot())
    summary: Dict[int, Dict[str, int]] = {}
    for tid in graph.vertices:
        summary[tid] = {
            "blocks": len(graph.successors(tid)),
            "waits_on": len(graph.predecessors(tid)),
        }
    return summary


def render_report(table: LockTable) -> str:
    """A full text report of the table: states, hubs and cycles."""
    lines: List[str] = ["lock table ({} resources)".format(len(table))]
    lines.append("-" * lines[0].__len__())
    for state in table.resources():
        lines.append(str(state))

    graph = build_graph(table.snapshot())
    cycles = graph.elementary_cycles()
    lines.append("")
    lines.append("blocked transactions:")
    # Union of the blocked index and a ground-truth scan of the states,
    # so waiters an inconsistent index has lost still get a line.
    waiters = set(table.blocked_tids())
    for state in table.resources():
        waiters.update(state.waiting_tids())
    for tid in sorted(waiters):
        lines.append("  " + str(explain_block(table, tid)))
    lines.append("")
    lines.append(
        "deadlock cycles: {}".format(cycles if cycles else "none")
    )
    return "\n".join(lines)
