"""Operator-facing introspection over a lock table.

The functions here answer the questions a DBA (or a test author) asks a
live lock manager:

* :func:`explain_block` — *why* is this transaction not running?  Walks
  the waited-by structure and produces the direct blockers, the kind of
  wait (conversion vs queue, and queue position), and whether the
  transaction currently sits on a deadlock cycle.
* :func:`wait_graph_summary` — per-transaction fan-in/fan-out of the
  H/W-TWBG, the hub view of contention.
* :func:`render_report` — a text report of the whole table: resources,
  holders, waiters, blockers, cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.hw_twbg import build_graph
from ..core.modes import LockMode
from .lock_table import LockTable


@dataclass
class BlockExplanation:
    """Everything known about why one transaction waits."""

    tid: int
    blocked: bool
    rid: Optional[str] = None
    mode: Optional[LockMode] = None
    conversion: bool = False
    queue_position: Optional[int] = None
    direct_blockers: List[int] = field(default_factory=list)
    on_deadlock_cycle: bool = False
    cycle: Optional[List[int]] = None

    def __str__(self) -> str:
        if not self.blocked:
            return "T{} is not blocked".format(self.tid)
        kind = (
            "converting to {}".format(self.mode.name)
            if self.conversion
            else "queued (position {}) for {}".format(
                self.queue_position, self.mode.name
            )
        )
        text = "T{} is blocked at {} — {}; waiting for {}".format(
            self.tid,
            self.rid,
            kind,
            ", ".join("T{}".format(t) for t in self.direct_blockers) or "-",
        )
        if self.on_deadlock_cycle:
            text += "; DEADLOCKED with cycle {}".format(self.cycle)
        return text


def explain_block(table: LockTable, tid: int) -> BlockExplanation:
    """Explain the wait state of ``tid`` (see module docstring)."""
    rid = table.blocked_at(tid)
    if rid is None:
        return BlockExplanation(tid=tid, blocked=False)

    from ..baselines.jiang import direct_blockers

    state = table.existing(rid)
    explanation = BlockExplanation(tid=tid, blocked=True, rid=rid)
    holder = state.holder_entry(tid)
    if holder is not None and holder.is_blocked:
        explanation.conversion = True
        explanation.mode = holder.blocked
    else:
        entry = state.queue_entry(tid)
        explanation.mode = entry.blocked if entry else None
        explanation.queue_position = state.queue_position(tid)
    explanation.direct_blockers = sorted(direct_blockers(state, tid))

    graph = build_graph(table.snapshot())
    for cycle in graph.elementary_cycles():
        if tid in cycle:
            explanation.on_deadlock_cycle = True
            explanation.cycle = cycle
            break
    return explanation


def wait_graph_summary(table: LockTable) -> Dict[int, Dict[str, int]]:
    """Per-transaction contention summary: ``blocks`` (how many wait on
    it, its waited-by fan-out) and ``waits_on`` (its fan-in)."""
    graph = build_graph(table.snapshot())
    summary: Dict[int, Dict[str, int]] = {}
    for tid in graph.vertices:
        summary[tid] = {
            "blocks": len(graph.successors(tid)),
            "waits_on": len(graph.predecessors(tid)),
        }
    return summary


def render_report(table: LockTable) -> str:
    """A full text report of the table: states, hubs and cycles."""
    lines: List[str] = ["lock table ({} resources)".format(len(table))]
    lines.append("-" * lines[0].__len__())
    for state in table.resources():
        lines.append(str(state))

    graph = build_graph(table.snapshot())
    cycles = graph.elementary_cycles()
    lines.append("")
    lines.append("blocked transactions:")
    for tid in sorted(table.blocked_tids()):
        lines.append("  " + str(explain_block(table, tid)))
    lines.append("")
    lines.append(
        "deadlock cycles: {}".format(cycles if cycles else "none")
    )
    return "\n".join(lines)
