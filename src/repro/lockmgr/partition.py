"""The one partition function: ``crc32(rid) % n``.

Every layer that routes a resource to an owner — the sharded core's
shard router, the cluster client's worker router, the coordinator's
merge bookkeeping — must agree on this mapping, or a resolution staged
against one partition would be applied to another.  Before this module
the expression was repeated at each site; now they all call
:func:`partition_of`, so policy-aware routing has a single seam.

CRC-32 is used for its stability: the mapping is a pure function of
the resource id and the partition count, identical across processes,
machines and Python versions (``zlib.crc32`` is specified by RFC
1950), which is what lets a cluster coordinator reason about worker
ownership without asking the workers.
"""

from __future__ import annotations

import zlib

__all__ = ["partition_of"]


def partition_of(rid: str, partitions: int) -> int:
    """Stable owner of ``rid`` among ``partitions`` partitions.

    ``partitions <= 1`` short-circuits to 0 without hashing — the
    single-shard fast path every monolithic component takes.
    """
    if partitions <= 1:
        return 0
    return zlib.crc32(rid.encode("utf-8")) % partitions
