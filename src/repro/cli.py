"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``inspect FILE``
    Load a lock-table state (paper notation ``.txt`` or JSON dump) and
    print the operator report: resources, blocked transactions with
    explanations, deadlock cycles.
``detect FILE``
    Run one periodic detection-resolution pass on the state and print
    the resolutions, optionally with the full walk trace (``--trace``)
    and per-transaction costs (``--cost 3=1.5``).
``graph FILE``
    Print the H/W-TWBG edges, or Graphviz with ``--dot``.
``simulate``
    Run the closed-system simulator with a chosen deadlock strategy and
    print the metric summary.
``compare``
    The detector shoot-out: all strategies on identical workloads.
``profile``
    Run a simulator workload under :mod:`cProfile` and print the
    hottest functions; ``--out`` saves the raw pstats file for
    ``snakeviz``/``pstats`` digging.
``serve``
    Run the lock manager as a network service
    (:mod:`repro.service`): an asyncio TCP server with per-session
    leases and a periodic detector task.
``remote ACTION``
    Introspect a running lock service: ``report``, ``graph``, ``dump``,
    ``stats``, ``metrics`` (Prometheus text exposition), ``log`` or an
    explicit ``detect`` pass.
``top``
    Live operator dashboard over a running lock service: grants/s,
    blocked transactions, hottest resources, last detector pass.
``trace-export``
    Pull the server's request-lifecycle spans as JSON-lines.
``incidents ACTION FILE``
    Browse a deadlock incident log (``serve --incident-log``):
    ``list`` the records, ``show`` one decision report, or ``graph``
    a cycle as Graphviz DOT.

States given as ``.json`` files must be :mod:`repro.core.serialize`
dumps; anything else is parsed as the paper's notation, e.g.::

    R1(S): Holder((T1, S, NL)) Queue((T2, X) (T3, S))
    R2(S): Holder((T2, S, NL) (T3, S, NL)) Queue((T1, X))
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .analysis.report import render_summaries
from .core.hw_twbg import build_graph
from .core.notation import load_table
from .core.serialize import loads as table_loads
from .core.trace import format_trace, trace_detection
from .core.victim import CostTable
from .lockmgr.introspect import render_report
from .lockmgr.lock_table import LockTable

#: Strategy factories by CLI name (built lazily to keep startup light).
STRATEGIES = {
    "park-periodic": lambda: _baselines().ParkPeriodicStrategy(),
    "park-continuous": lambda: _baselines().ParkContinuousStrategy(),
    "park-adaptive": lambda: _baselines().AdaptivePeriodicStrategy(),
    "nowait": lambda: _baselines().NoWaitStrategy(),
    "agrawal": lambda: _baselines().AgrawalStrategy(),
    "jiang": lambda: _baselines().JiangStrategy(),
    "elmagarmid": lambda: _baselines().ElmagarmidStrategy(),
    "wfg": lambda: _baselines().WFGStrategy(continuous=True),
    "timeout": lambda: _baselines().TimeoutStrategy(15.0),
    "wound-wait": lambda: _baselines().WoundWaitStrategy(),
    "wait-die": lambda: _baselines().WaitDieStrategy(),
}


def _baselines():
    from . import baselines

    return baselines


def read_table(path: str) -> LockTable:
    """Load a lock table from a notation or JSON file."""
    with open(path) as handle:
        text = handle.read()
    if path.endswith(".json"):
        return table_loads(text)
    return load_table(LockTable(), text)


def parse_cost_pairs(pairs: List[str]) -> dict:
    costs = {}
    for pair in pairs:
        tid, _, value = pair.partition("=")
        costs[int(tid.lstrip("Tt"))] = float(value)
    return costs


def parse_costs(pairs: List[str]) -> CostTable:
    return CostTable(parse_cost_pairs(pairs))


class ServeConfigError(ValueError):
    """An impossible ``serve`` flag combination.

    ``cmd_serve`` turns this into a clear message on stderr and exit
    code 2 — the argparse convention for bad usage."""


class ServeConfig:
    """The validated, normalised ``serve`` topology knobs."""

    def __init__(self, policy, continuous, shards, workers, warnings,
                 unix=None, uvloop=False):
        self.policy = policy
        self.continuous = continuous
        self.shards = shards
        self.workers = workers
        self.unix = unix
        self.uvloop = uvloop
        self.warnings = tuple(warnings)


def validate_serve_config(
    policy: Optional[str] = None,
    continuous: bool = False,
    shards: Optional[int] = None,
    workers: int = 1,
    period: float = 0.5,
    unix: Optional[str] = None,
    uvloop: bool = False,
    environ=None,
) -> ServeConfig:
    """Validate one ``serve`` flag set; the single place topology
    combinations are judged.

    Explicitly contradictory flags raise :class:`ServeConfigError`
    (the old scattered checks silently "won" one flag over another);
    environment-derived defaults that merely lose to an explicit flag
    demote to warnings, so an exported ``REPRO_SHARDS``/
    ``REPRO_POLICY`` never breaks a command line that used to work.
    Returns the normalised :class:`ServeConfig` with the *effective*
    policy name resolved (explicit flag > environment > default).
    """
    from .lockmgr.sharded import SHARDS_ENV
    from .policy import POLICIES, POLICY_ENV

    env = os.environ if environ is None else environ
    warnings: List[str] = []

    env_policy = (env.get(POLICY_ENV) or "").strip() or None
    effective = policy if policy is not None else env_policy
    if effective is not None and effective not in POLICIES:
        source = (
            "--policy" if policy is not None
            else "{}=".format(POLICY_ENV) + str(env_policy)
        )
        raise ServeConfigError(
            "unknown detection policy {!r} (from {}); known policies: "
            "{}".format(effective, source, ", ".join(sorted(POLICIES)))
        )
    if continuous:
        if policy is not None and policy != "continuous":
            raise ServeConfigError(
                "--continuous contradicts --policy {}: the continuous "
                "companion detector is itself a policy; drop one of "
                "the two flags".format(policy)
            )
        if policy is None and env_policy not in (None, "continuous"):
            warnings.append(
                "--continuous overrides {}={}".format(
                    POLICY_ENV, env_policy
                )
            )
        effective = "continuous"

    wants_continuous = effective == "continuous"
    if wants_continuous:
        if workers > 1:
            raise ServeConfigError(
                "the continuous policy needs the whole wait graph in "
                "one process; it cannot run with --workers "
                "{}".format(workers)
            )
        if shards is not None and shards > 1:
            raise ServeConfigError(
                "the continuous policy needs the whole wait graph in "
                "one process; it cannot run with --shards "
                "{}".format(shards)
            )
        env_shards = (env.get(SHARDS_ENV) or "").strip()
        if shards is None and env_shards.isdigit() and int(env_shards) > 1:
            warnings.append(
                "the continuous policy forces one shard; ignoring "
                "{}={}".format(SHARDS_ENV, env_shards)
            )
            shards = 1

    if workers < 1:
        raise ServeConfigError(
            "--workers must be at least 1 (got {})".format(workers)
        )
    if shards is not None and shards < 1:
        raise ServeConfigError(
            "--shards must be at least 1 (got {})".format(shards)
        )
    if effective in ("adaptive", "predict") and period <= 0:
        warnings.append(
            "policy {} acts on periodic detector passes but --period "
            "{} disables the detector; it will be inert".format(
                effective, period
            )
        )
    if unix is not None and workers > 1:
        raise ServeConfigError(
            "--unix binds a single UNIX-domain socket; the cluster "
            "supervisor partitions a TCP port range, so it cannot "
            "run with --workers {}".format(workers)
        )
    if uvloop:
        from .service.eventloop import uvloop_available

        if not uvloop_available():
            warnings.append(
                "--uvloop requested but uvloop is not installed "
                "(pip install repro[perf]); serving on stock asyncio"
            )
            uvloop = False
    return ServeConfig(
        policy=effective,
        continuous=wants_continuous,
        shards=shards,
        workers=workers,
        warnings=warnings,
        unix=unix,
        uvloop=uvloop,
    )


def cmd_inspect(args) -> int:
    table = read_table(args.file)
    print(render_report(table))
    return 0


def cmd_graph(args) -> int:
    graph = build_graph(read_table(args.file).snapshot())
    print(graph.to_dot() if args.dot else graph)
    return 0


def cmd_detect(args) -> int:
    table = read_table(args.file)
    costs = parse_costs(args.cost)
    if args.trace:
        result, trace = trace_detection(
            table, costs, allow_tdr2=not args.no_tdr2
        )
        print(format_trace(trace))
        print()
    else:
        from .core.detection import PeriodicDetector

        result = PeriodicDetector(
            table, costs, allow_tdr2=not args.no_tdr2
        ).run()
    if not result.deadlock_found:
        print("no deadlock found")
    for resolution in result.resolutions:
        print(
            "cycle {} resolved by: {}".format(
                resolution.cycle, resolution.chosen
            )
        )
    print("aborted:", result.aborted or "-")
    if result.spared:
        print("spared:", result.spared)
    if result.repositions:
        print(
            "repositioned queues:",
            ", ".join(event.rid for event in result.repositions),
        )
    print("\nresulting table:")
    print(table)
    return 0 if not result.aborted else 1


def _spec_from_args(args):
    from .sim.workload import PRESETS, WorkloadSpec

    if args.preset:
        return PRESETS[args.preset]()
    return WorkloadSpec(
        resources=args.resources,
        hotspot_resources=max(args.resources // 6, 1),
        write_fraction=args.write_fraction,
        upgrade_fraction=args.upgrade_fraction,
    )


def cmd_simulate(args) -> int:
    from .sim.runner import run_once

    spec = _spec_from_args(args)
    result = run_once(
        spec,
        STRATEGIES[args.strategy](),
        duration=args.duration,
        terminals=args.terminals,
        seed=args.seed,
        period=args.period,
    )
    summary = result.metrics.summary()
    print(
        render_summaries(
            {result.strategy: summary},
            title="simulation (duration {}, {} terminals, seed {})".format(
                args.duration, args.terminals, args.seed
            ),
        )
    )
    if args.metrics_out:
        from .obs.bench import append_record, build_record

        record = build_record(
            "simulate",
            summary,
            params={
                "strategy": args.strategy,
                "duration": args.duration,
                "terminals": args.terminals,
                "seed": args.seed,
                "period": args.period,
                "preset": args.preset or "",
            },
        )
        append_record(args.metrics_out, record)
        print("metrics record appended to {}".format(args.metrics_out))
    return 0


def cmd_compare(args) -> int:
    from .sim.runner import aggregate, compare_strategies

    spec = _spec_from_args(args)
    names = args.strategies or list(STRATEGIES)
    results = compare_strategies(
        spec,
        [STRATEGIES[name] for name in names],
        duration=args.duration,
        terminals=args.terminals,
        seeds=tuple(range(args.seed, args.seed + args.runs)),
        period=args.period,
    )
    print(
        render_summaries(
            aggregate(results),
            columns=[
                "commits",
                "aborts",
                "wasted_fraction",
                "deadlocks_resolved",
                "abort_free",
                "mean_deadlock_latency",
            ],
            title="strategy comparison ({} seeds)".format(args.runs),
        )
    )
    return 0


def cmd_profile(args) -> int:
    import cProfile
    import pstats

    from .sim.runner import run_once

    spec = _spec_from_args(args)
    profiler = cProfile.Profile()
    profiler.enable()
    result = run_once(
        spec,
        STRATEGIES[args.strategy](),
        duration=args.duration,
        terminals=args.terminals,
        seed=args.seed,
        period=args.period,
    )
    profiler.disable()

    summary = result.metrics.summary()
    print(
        "profiled {} (duration {}, {} terminals, seed {}): "
        "{} commits, {} aborts".format(
            args.strategy,
            args.duration,
            args.terminals,
            args.seed,
            summary.get("commits", 0),
            summary.get("aborts", 0),
        )
    )
    print()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        profiler.dump_stats(args.out)
        print("pstats profile written to {}".format(args.out))
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .service.server import LockServer

    try:
        config = validate_serve_config(
            policy=args.policy,
            continuous=args.continuous,
            shards=args.shards,
            workers=args.workers,
            period=args.period,
            unix=args.unix,
            uvloop=args.uvloop,
        )
    except ServeConfigError as exc:
        print("serve: {}".format(exc), file=sys.stderr)
        return 2
    for warning in config.warnings:
        print("warning: {}".format(warning), file=sys.stderr)
    if config.workers > 1:
        return _serve_cluster(args, config)

    incident_log = None
    if args.incident_log:
        from .obs.incidents import IncidentLog

        incident_log = IncidentLog(path=args.incident_log)
    server = LockServer(
        costs=parse_costs(args.cost),
        policy=config.policy,
        period=None if args.period <= 0 else args.period,
        lease=args.lease,
        shards=config.shards,
        journal_path=args.journal,
        journal_fsync=args.journal_fsync,
        incident_log=incident_log,
    )
    if args.max_frame:
        server.max_frame = args.max_frame
    if config.uvloop:
        from .service.eventloop import install_uvloop

        install_uvloop()
    exporter = None
    if args.metrics_port is not None:
        from .obs.cluster import MetricsExporter

        exporter = MetricsExporter(
            server.core.telemetry.registry.render,
            host=args.host,
            port=args.metrics_port,
        )

    async def run() -> None:
        await server.start(args.host, args.port, unix=config.unix)
        if exporter is not None:
            exporter.start()
            print(
                "metrics exposition on http://{}:{}/metrics".format(
                    args.host, exporter.port
                ),
                flush=True,
            )
        endpoint = (
            "unix:{}".format(server.unix)
            if server.unix is not None
            else "{}:{}".format(server.host, server.port)
        )
        print(
            "lock service listening on {} "
            "(period={}, lease={}s, shards={}, policy={}, "
            "loop={})".format(
                endpoint,
                server.period if server.period is not None else "off",
                server.lease,
                server.core.shards,
                server.core.policy.name,
                "uvloop" if config.uvloop else "asyncio",
            ),
            flush=True,
        )
        if server.recovery is not None and server.recovery.replayed:
            report = server.recovery
            print(
                "recovered from journal: {} records replayed in "
                "{:.3f}s, epoch {}, {} leases honored, {} "
                "reaped".format(
                    report.replayed,
                    report.seconds,
                    server.restart_epoch,
                    report.leases_honored,
                    report.leases_reaped,
                ),
                flush=True,
            )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if exporter is not None:
                exporter.close()
            await server.aclose()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _serve_cluster(args, config: ServeConfig) -> int:
    import logging
    import time

    from .cluster import ClusterSupervisor

    workers = config.workers
    logging.basicConfig(
        level=logging.INFO, format="%(levelname)s %(name)s: %(message)s"
    )
    supervisor = ClusterSupervisor(
        workers=workers,
        host=args.host,
        base_port=args.port,
        period=None if args.period <= 0 else args.period,
        lease=args.lease,
        costs=parse_cost_pairs(args.cost),
        journal_dir=args.journal,
        incident_log=args.incident_log,
        metrics_port=args.metrics_port,
        metrics_host=args.host,
        policy=config.policy,
        shards_per_worker=1 if config.shards is None else config.shards,
    )
    try:
        with supervisor:
            print(
                "lock cluster up: {} workers at {} "
                "(detector period={}, lease={}s, policy={})".format(
                    workers,
                    ", ".join(
                        "{}:{}".format(host, port)
                        for host, port in supervisor.endpoints()
                    ),
                    supervisor.period
                    if supervisor.period is not None
                    else "off",
                    args.lease,
                    supervisor.policy.name,
                ),
                flush=True,
            )
            if supervisor.metrics_port is not None:
                print(
                    "aggregated metrics exposition on "
                    "http://{}:{}/metrics".format(
                        args.host, supervisor.metrics_port
                    ),
                    flush=True,
                )
            if args.incident_log:
                print(
                    "incident log at {}".format(args.incident_log),
                    flush=True,
                )
            while True:
                time.sleep(1.0)
    except KeyboardInterrupt:
        pass
    return 0


def cmd_remote(args) -> int:
    import asyncio

    from .service.admin import render_stats
    from .service.client import AsyncLockClient

    async def run() -> int:
        client = await AsyncLockClient.connect(args.host, args.port)
        try:
            if args.action == "report":
                print((await client.inspect())["report"])
            elif args.action == "graph":
                payload = await client.graph(dot=args.dot)
                print(payload["dot"] if args.dot else payload["text"])
            elif args.action == "dump":
                print((await client.dump())["text"])
            elif args.action == "stats":
                print(render_stats(await client.stats()))
            elif args.action == "metrics":
                print((await client.metrics())["text"], end="")
            elif args.action == "log":
                payload = await client.log(limit=args.limit)
                print("{} events total".format(payload["total"]))
                for event in payload["events"]:
                    print(event)
            else:  # detect
                result = await client.detect()
                if not result.deadlock_found:
                    print("no deadlock found")
                else:
                    print(
                        "resolved {} cycle(s); abort-free: {}".format(
                            len(result.resolutions), result.abort_free
                        )
                    )
                print("aborted:", result.aborted or "-")
                if result.repositions:
                    print(
                        "repositioned queues:",
                        ", ".join(
                            event.rid for event in result.repositions
                        ),
                    )
        finally:
            await client.close()
        return 0

    try:
        return asyncio.run(run())
    except (ConnectionError, OSError) as exc:
        print(
            "cannot reach lock service at {}:{} ({})".format(
                args.host, args.port, exc
            ),
            file=sys.stderr,
        )
        return 1


def cmd_top(args) -> int:
    from .obs.top import parse_endpoints, run_cluster_top, run_top

    if args.cluster:
        try:
            endpoints = parse_endpoints(args.cluster)
        except ValueError as exc:
            print("bad --cluster spec: {}".format(exc), file=sys.stderr)
            return 2
        try:
            run_cluster_top(
                endpoints,
                interval=args.interval,
                iterations=1 if args.once else None,
                clear=not args.once,
                incidents_path=args.incidents,
            )
        except KeyboardInterrupt:
            pass
        return 0

    try:
        run_top(
            args.host,
            args.port,
            interval=args.interval,
            iterations=1 if args.once else None,
            clear=not args.once,
            incidents_path=args.incidents,
        )
    except (ConnectionError, OSError) as exc:
        print(
            "cannot reach lock service at {}:{} ({})".format(
                args.host, args.port, exc
            ),
            file=sys.stderr,
        )
        return 1
    except KeyboardInterrupt:
        pass
    return 0


def cmd_trace_export(args) -> int:
    from .obs.top import run_trace_export

    try:
        count = run_trace_export(
            args.host, args.port, out_path=args.out, limit=args.limit
        )
    except (ConnectionError, OSError) as exc:
        print(
            "cannot reach lock service at {}:{} ({})".format(
                args.host, args.port, exc
            ),
            file=sys.stderr,
        )
        return 1
    if args.out:
        print(
            "{} span(s) written to {}".format(count, args.out),
            file=sys.stderr,
        )
    return 0


def cmd_incidents(args) -> int:
    from .obs.incidents import (
        incident_to_dot,
        load_incidents,
        render_incident,
        validate_incident,
    )

    records = load_incidents(args.file)
    if not records:
        print("no incident records in {}".format(args.file),
              file=sys.stderr)
        return 1

    def pick(records):
        """The addressed record: by id when given, else the newest."""
        if args.id:
            for record in records:
                if record.get("id") == args.id:
                    return record
            print(
                "no incident {!r} in {} ({} records)".format(
                    args.id, args.file, len(records)
                ),
                file=sys.stderr,
            )
            return None
        return records[-1]

    if args.action == "list":
        shown = records[-args.limit:] if args.limit else records
        for record in shown:
            cycles = record.get("cycles") or []
            decisions = ",".join(
                entry.get("decision", "?") for entry in cycles
            )
            problems = validate_incident(record)
            print(
                "{}  ts={:<14.3f} source={:<8} cycles={} [{}] "
                "aborted={} {}".format(
                    record.get("id", "?"),
                    record.get("ts", 0.0),
                    record.get("source", "?"),
                    len(cycles),
                    decisions,
                    record.get("aborted") or "-",
                    "INVALID" if problems else "",
                ).rstrip()
            )
        print(
            "{} of {} record(s) shown from {}".format(
                len(shown), len(records), args.file
            ),
            file=sys.stderr,
        )
        return 0

    record = pick(records)
    if record is None:
        return 1
    if args.action == "show":
        print(render_incident(record))
        for problem in validate_incident(record):
            print("schema problem: " + problem, file=sys.stderr)
        return 0
    # graph
    print(incident_to_dot(record))
    return 0


def cmd_check(args) -> int:
    from .check import CheckConfig, run_check
    from .check.artifact import load_artifact, replay_artifact

    if args.replay:
        artifact = load_artifact(args.replay)
        outcome = replay_artifact(artifact, tail=args.tail)
        print(
            "replaying {} schedule (seed {}, {} decisions)".format(
                artifact.backend, artifact.seed, len(artifact.decisions)
            )
        )
        if args.trace:
            print("\n".join(outcome.trace))
        print(outcome.result.summary())
        if artifact.failure and not outcome.reproduced:
            print("recorded failure did NOT reproduce")
            return 1
        return 0 if outcome.result.ok else 1

    backends = args.backends or None
    config = CheckConfig(
        seed=args.seed,
        schedules=args.schedules,
        backends=tuple(backends) if backends else ("concurrent", "service"),
        actors=args.actors,
        preset=args.preset,
        faults=not args.no_faults,
        exhaustive=args.exhaustive,
        max_failures=args.max_failures,
        shrink=not args.no_shrink,
        artifact_dir=args.artifact_dir,
    )
    report = run_check(config, log=lambda line: print(line, flush=True))
    print("\n".join(report.summary_lines()))
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="H/W-TWBG deadlock detection and resolution "
        "(Park 1991/1992 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    inspect_cmd = commands.add_parser(
        "inspect", help="report on a lock-table state file"
    )
    inspect_cmd.add_argument("file")
    inspect_cmd.set_defaults(run=cmd_inspect)

    graph_cmd = commands.add_parser(
        "graph", help="print the H/W-TWBG of a state file"
    )
    graph_cmd.add_argument("file")
    graph_cmd.add_argument(
        "--dot", action="store_true", help="emit Graphviz"
    )
    graph_cmd.set_defaults(run=cmd_graph)

    detect_cmd = commands.add_parser(
        "detect", help="run one periodic detection-resolution pass"
    )
    detect_cmd.add_argument("file")
    detect_cmd.add_argument(
        "--cost",
        action="append",
        default=[],
        metavar="TID=COST",
        help="victim cost for a transaction (repeatable)",
    )
    detect_cmd.add_argument(
        "--no-tdr2", action="store_true", help="abort-only resolution"
    )
    detect_cmd.add_argument(
        "--trace", action="store_true", help="print the Step-2 walk"
    )
    detect_cmd.set_defaults(run=cmd_detect)

    def add_sim_options(sub):
        from .sim.workload import PRESETS

        sub.add_argument("--duration", type=float, default=150.0)
        sub.add_argument("--terminals", type=int, default=6)
        sub.add_argument("--seed", type=int, default=1)
        sub.add_argument("--period", type=float, default=5.0)
        sub.add_argument("--resources", type=int, default=36)
        sub.add_argument("--write-fraction", type=float, default=0.35)
        sub.add_argument("--upgrade-fraction", type=float, default=0.25)
        sub.add_argument(
            "--preset",
            choices=sorted(PRESETS),
            help="named workload (overrides the knobs above)",
        )

    simulate_cmd = commands.add_parser(
        "simulate", help="run the closed-system simulator"
    )
    simulate_cmd.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="park-periodic"
    )
    add_sim_options(simulate_cmd)
    simulate_cmd.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="append a repro.bench/1 JSON-lines record of the summary",
    )
    simulate_cmd.set_defaults(run=cmd_simulate)

    compare_cmd = commands.add_parser(
        "compare", help="compare deadlock-handling strategies"
    )
    compare_cmd.add_argument(
        "--strategies",
        nargs="*",
        choices=sorted(STRATEGIES),
        help="subset to compare (default: all)",
    )
    compare_cmd.add_argument("--runs", type=int, default=2)
    add_sim_options(compare_cmd)
    compare_cmd.set_defaults(run=cmd_compare)

    profile_cmd = commands.add_parser(
        "profile",
        help="run a simulator workload under cProfile and print the "
        "hottest functions",
    )
    profile_cmd.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="park-periodic"
    )
    add_sim_options(profile_cmd)
    profile_cmd.add_argument(
        "--top", type=int, default=25,
        help="how many functions to print",
    )
    profile_cmd.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "calls"],
        default="cumulative",
        help="pstats sort order",
    )
    profile_cmd.add_argument(
        "--out", metavar="PATH",
        help="also dump the raw pstats file here",
    )
    profile_cmd.set_defaults(run=cmd_profile)

    serve_cmd = commands.add_parser(
        "serve", help="run the lock manager as a network service"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=7411)
    serve_cmd.add_argument(
        "--unix",
        default=None,
        metavar="PATH",
        help="listen on a UNIX-domain socket at PATH instead of TCP "
        "(lower per-frame syscall cost for same-host clients)",
    )
    serve_cmd.add_argument(
        "--uvloop",
        action="store_true",
        help="serve on uvloop when the optional 'perf' extra is "
        "installed (falls back to asyncio with a warning)",
    )
    serve_cmd.add_argument(
        "--max-frame",
        type=int,
        default=None,
        metavar="BYTES",
        help="per-frame size cap on both wire codecs (default 8 MiB); "
        "oversized frames answer a frame-too-large error",
    )
    serve_cmd.add_argument(
        "--period",
        type=float,
        default=0.5,
        help="periodic detector cadence in seconds (<=0 disables it)",
    )
    serve_cmd.add_argument(
        "--lease",
        type=float,
        default=5.0,
        help="default session lease granted to clients",
    )
    serve_cmd.add_argument(
        "--continuous",
        action="store_true",
        help="use the continuous companion detector (same as "
        "--policy continuous)",
    )
    serve_cmd.add_argument(
        "--policy",
        choices=["periodic", "continuous", "nowait", "adaptive",
                 "predict"],
        default=None,
        help="detection/resolution policy (default: REPRO_POLICY or "
        "periodic); nowait runs the deadlock-free ordered-wait lane, "
        "adaptive auto-tunes the detector period, predict warns on "
        "near-cycles",
    )
    serve_cmd.add_argument(
        "--shards",
        type=int,
        default=None,
        help="lock table shards (default: REPRO_SHARDS or 1; "
        "--continuous forces 1)",
    )
    serve_cmd.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes; >1 runs the cluster supervisor with "
        "one partitioned lock server per worker on port..port+N-1 "
        "(--continuous forces 1)",
    )
    serve_cmd.add_argument(
        "--cost",
        action="append",
        default=[],
        metavar="TID=COST",
        help="victim cost for a transaction (repeatable)",
    )
    serve_cmd.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="journal sessions and locks to PATH and replay it on "
        "start (crash-safe restart); with --workers > 1 PATH is a "
        "directory holding one journal per worker",
    )
    serve_cmd.add_argument(
        "--journal-fsync",
        choices=["always", "batch", "never"],
        default="batch",
        help="fsync policy for the journal (default: batch — one "
        "fsync per writer pass)",
    )
    serve_cmd.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve a Prometheus exposition on this HTTP port (0 = "
        "ephemeral); with --workers > 1 the supervisor aggregates "
        "every worker's metrics into the one scrape point",
    )
    serve_cmd.add_argument(
        "--incident-log",
        default=None,
        metavar="PATH",
        help="append a repro.incident/1 record for every resolved "
        "deadlock to this JSON-lines file (browse with "
        "'repro incidents')",
    )
    serve_cmd.set_defaults(run=cmd_serve)

    remote_cmd = commands.add_parser(
        "remote", help="introspect a running lock service"
    )
    remote_cmd.add_argument(
        "action",
        choices=[
            "report", "graph", "dump", "stats", "metrics", "log", "detect",
        ],
    )
    remote_cmd.add_argument("--host", default="127.0.0.1")
    remote_cmd.add_argument("--port", type=int, default=7411)
    remote_cmd.add_argument(
        "--dot", action="store_true", help="emit Graphviz (graph action)"
    )
    remote_cmd.add_argument(
        "--limit", type=int, default=20, help="events to show (log action)"
    )
    remote_cmd.set_defaults(run=cmd_remote)

    top_cmd = commands.add_parser(
        "top", help="live operator dashboard over a running lock service"
    )
    top_cmd.add_argument("--host", default="127.0.0.1")
    top_cmd.add_argument("--port", type=int, default=7411)
    top_cmd.add_argument(
        "--interval", type=float, default=1.0,
        help="refresh cadence in seconds",
    )
    top_cmd.add_argument(
        "--once", action="store_true",
        help="print one dashboard frame and exit",
    )
    top_cmd.add_argument(
        "--cluster",
        metavar="HOST:PORT,...",
        help="poll a worker fleet instead of one server and render the "
        "per-worker cluster view",
    )
    top_cmd.add_argument(
        "--incidents",
        default=None,
        metavar="PATH",
        help="also render the newest records of this incident log "
        "(serve --incident-log) under the dashboard",
    )
    top_cmd.set_defaults(run=cmd_top)

    trace_cmd = commands.add_parser(
        "trace-export",
        help="export request-lifecycle spans from a running service",
    )
    trace_cmd.add_argument("--host", default="127.0.0.1")
    trace_cmd.add_argument("--port", type=int, default=7411)
    trace_cmd.add_argument(
        "--out", metavar="PATH",
        help="write JSON-lines here instead of stdout",
    )
    trace_cmd.add_argument(
        "--limit", type=int, default=0,
        help="most recent spans to export (0 = all retained)",
    )
    trace_cmd.set_defaults(run=cmd_trace_export)

    incidents_cmd = commands.add_parser(
        "incidents",
        help="browse a deadlock incident log (repro.incident/1 "
        "JSON-lines)",
    )
    incidents_cmd.add_argument(
        "action",
        choices=["list", "show", "graph"],
        help="list records, show one report, or emit one cycle as "
        "Graphviz",
    )
    incidents_cmd.add_argument(
        "file", help="incident log written by serve --incident-log"
    )
    incidents_cmd.add_argument(
        "--id", default=None,
        help="incident id to show/graph (default: the newest)",
    )
    incidents_cmd.add_argument(
        "--limit", type=int, default=0,
        help="newest records to list (0 = all)",
    )
    incidents_cmd.set_defaults(run=cmd_incidents)

    check_cmd = commands.add_parser(
        "check",
        help="explore schedules deterministically and check the "
        "paper's theorems as step oracles",
    )
    check_cmd.add_argument("--seed", type=int, default=0)
    check_cmd.add_argument(
        "--schedules", type=int, default=200,
        help="how many schedules to explore",
    )
    check_cmd.add_argument(
        "--backends",
        nargs="*",
        choices=[
            "concurrent", "service", "races", "sharded", "cluster",
            "policy",
        ],
        help="which models to explore (default: concurrent service)",
    )
    check_cmd.add_argument("--actors", type=int, default=3)
    check_cmd.add_argument(
        "--preset", choices=["tiny-hot", "tiny-five-mode"],
        default="tiny-hot",
    )
    check_cmd.add_argument(
        "--exhaustive", action="store_true",
        help="bounded-exhaustive DFS instead of seeded-random",
    )
    check_cmd.add_argument(
        "--no-faults", action="store_true",
        help="disable service fault injection",
    )
    check_cmd.add_argument(
        "--max-failures", type=int, default=1,
        help="stop after this many failing schedules",
    )
    check_cmd.add_argument(
        "--no-shrink", action="store_true",
        help="keep failing traces at full length",
    )
    check_cmd.add_argument(
        "--artifact-dir", default=None,
        help="directory for failing-schedule artifacts",
    )
    check_cmd.add_argument(
        "--replay", metavar="ARTIFACT",
        help="replay a saved failing-schedule artifact instead",
    )
    check_cmd.add_argument(
        "--tail", choices=["first", "error"], default="first",
        help="replay behaviour past the decision list",
    )
    check_cmd.add_argument(
        "--trace", action="store_true",
        help="print the decision trace while replaying",
    )
    check_cmd.set_defaults(run=cmd_check)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
