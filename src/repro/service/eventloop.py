"""Optional uvloop activation with a clean stdlib fallback.

uvloop is the ``perf`` optional extra (``pip install repro[perf]``) —
the core stays dependency-free, so everything here is import-guarded:
when uvloop is absent, :func:`install_uvloop` reports False and the
caller keeps the default asyncio event loop, and
:func:`loop_factory` hands back the stdlib factory.  ``serve --uvloop``
asks for it explicitly (and still falls back with a warning rather
than refusing to serve, unless ``require=True``).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional

try:  # pragma: no cover - exercised only where the extra is installed
    import uvloop  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - the dependency-free default
    uvloop = None


def uvloop_available() -> bool:
    """Whether the optional uvloop extra is importable."""
    return uvloop is not None


def install_uvloop(require: bool = False) -> bool:
    """Make uvloop the process-wide event loop policy.

    Returns True when uvloop is now the policy, False when the extra is
    not installed (the caller stays on stock asyncio).  ``require=True``
    turns that fallback into a :class:`RuntimeError` for callers that
    were explicitly promised uvloop.
    """
    if uvloop is None:
        if require:
            raise RuntimeError(
                "uvloop is not installed; install the 'perf' extra "
                "(pip install repro[perf]) or drop --uvloop"
            )
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True


def loop_factory(
    use_uvloop: bool = True,
) -> Optional[Callable[[], asyncio.AbstractEventLoop]]:
    """A loop factory for :class:`asyncio.Runner`.

    With ``use_uvloop`` and the extra installed, returns
    ``uvloop.new_event_loop``; otherwise None (Runner's stdlib
    default).  Factory-scoped activation beats the global policy for
    embedded servers: only the server's own thread changes loops.
    """
    if use_uvloop and uvloop is not None:
        return uvloop.new_event_loop
    return None
