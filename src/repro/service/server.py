"""The asyncio lock server: ``LockManager`` as a network service.

Architecture
------------

* **Synchronous core.**  Everything the service *is* — sessions and
  leases, transaction ownership, parked waits and their pump, the
  detection step, the counters — lives in the synchronous
  :class:`~repro.service.core.ServiceCore`.  This module is the network
  shell around it: sockets, frames, tasks.  The split is what lets the
  deterministic schedule explorer (:mod:`repro.check`) drive the exact
  service logic one transition at a time under a virtual clock.
* **Single writer.**  The :class:`~repro.lockmgr.manager.LockManager` is
  single-threaded by design; the server funnels *every* access to it —
  lock requests, commits, detection passes, introspection reads —
  through one asyncio queue consumed by one writer task, so connection
  handlers can run concurrently while the lock table sees a strictly
  serial operation stream (the paper's sequential transaction model,
  preserved over the network).
* **Parked waiters.**  A blocking ``lock`` request does not answer until
  the transaction is granted or aborted: the writer parks a
  :class:`~repro.service.core.ParkedWait` keyed by transaction id, and
  after every operation the core *pumps* the parked waits against the
  manager (granted?  aborted?) — the network analogue of the condition
  variables in :class:`~repro.lockmgr.concurrent.ConcurrentLockManager`.
  A wait with a timeout answers ``timeout`` but leaves the request
  queued, so a retried ``lock`` resumes the same queue position.
* **Sessions and leases.**  Every connection is a session holding a
  lease that each received frame (heartbeats included) renews.  A silent
  client's lease expires: its transactions are aborted, its locks freed
  and its connection closed — a crashed or hung client cannot wedge the
  lock table.  A rude disconnect (no ``goodbye``) is cleaned up
  immediately.
* **Periodic detector.**  With ``period`` set, an asyncio task runs the
  paper's periodic detection-resolution pass through the writer queue on
  that cadence; ``continuous=True`` instead resolves on every block,
  exactly as in the embedded manager.
"""

from __future__ import annotations

import asyncio
from time import perf_counter
from typing import Awaitable, Callable, Dict, List, Optional, Set

from .. import __version__
from ..core.errors import ReproError
from ..core.modes import parse_mode
from ..core.victim import CostTable
from ..obs.metrics import DURATION_BUCKETS as _FSYNC_BUCKETS
from . import admin
from .core import MAX_LEASE, MIN_LEASE, ParkedWait, ServiceCore, Session
from .journal import SessionJournal, recover_into
from .protocol import (
    FrameTooLarge,
    MAX_FRAME,
    ProtocolError,
    ServiceError,
    detection_to_dict,
    error,
    ok,
    read_frame,
)
from .wire import JSON_CODEC, WIRE_BINARY, WIRE_JSON, codec_for, negotiate

__all__ = [
    "LockServer",
    "Session",
    "ServiceCore",
    "serve",
    "MIN_LEASE",
    "MAX_LEASE",
]

#: Outgoing frames are buffered by the transport; a drain (one loop
#: hop, possibly a flow-control wait) is only taken once the buffer is
#: this deep.  Small request/response frames almost never hit it.
_DRAIN_THRESHOLD = 64 * 1024

#: Wire telemetry is sampled: one frame in every ``_WIRE_SAMPLE``
#: feeds the size/latency histograms (and the frame counter is bumped
#: by the sampling factor), so the hot path pays the instrument cost
#: ~1.5% of the time.
_WIRE_SAMPLE = 64
_WIRE_SAMPLE_MASK = _WIRE_SAMPLE - 1

_FRAME_BUCKETS = (
    16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0,
    16384.0, 65536.0, 262144.0, 1048576.0,
)
_CODEC_BUCKETS = (
    0.000001, 0.000002, 0.000005, 0.00001, 0.00002, 0.00005,
    0.0001, 0.0005, 0.002,
)


class LockServer:
    """Serves a :class:`ServiceCore` over TCP (see module docstring).

    Parameters mirror the embedded managers: ``costs`` feeds victim
    selection, ``continuous`` switches to the companion detector,
    ``period`` is the periodic detector cadence in seconds (None
    disables the background task — deadlocks then resolve only on
    explicit ``detect`` requests), ``lease`` is the default session
    lease granted to clients that do not ask for one.
    """

    def __init__(
        self,
        costs: Optional[CostTable] = None,
        continuous: bool = False,
        period: Optional[float] = 0.5,
        lease: float = 5.0,
        telemetry=None,
        shards: Optional[int] = None,
        sequence_source=None,
        journal_path: Optional[str] = None,
        journal_fsync: str = "batch",
        journal=None,
        incident_log=None,
        policy=None,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self.core = ServiceCore(
            costs=costs,
            continuous=continuous,
            lease=lease,
            telemetry=telemetry,
            shards=shards,
            sequence_source=sequence_source,
            incident_log=incident_log,
            policy=policy,
        )
        self.continuous = self.core.continuous
        self.period = period
        self.lease = lease
        # The journal is built here but only replayed and attached in
        # :meth:`start` — recovery wants the loop clock installed first.
        if journal is None and journal_path is not None:
            journal = SessionJournal(journal_path, fsync=journal_fsync)
        self._journal = journal
        #: How many times a server booted on this journal; stamped into
        #: every outgoing frame so clients can see a reincarnation.
        self.restart_epoch = 0
        #: The :class:`~repro.service.journal.RecoveryReport` of the
        #: start-time replay (None when running without a journal).
        self.recovery = None
        #: Per-connection frame-size ceiling, both decode paths (JSON
        #: and binary) and outgoing encodes alike.
        self.max_frame = int(max_frame)
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        #: Path of the UNIX-domain listener when serving on one.
        self.unix: Optional[str] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._ops: "asyncio.Queue" = asyncio.Queue()
        self._tasks: List[asyncio.Task] = []

    # -- core views --------------------------------------------------------

    @property
    def manager(self):
        return self.core.manager

    @property
    def stats(self):
        return self.core.stats

    @property
    def _sessions(self) -> Dict[str, Session]:
        return self.core.sessions

    @property
    def _owners(self) -> Dict[int, Session]:
        return self.core.owners

    @property
    def _waiters(self) -> Dict[int, ParkedWait]:
        return self.core.waiters

    # -- lifecycle ---------------------------------------------------------

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix: Optional[str] = None,
    ) -> "LockServer":
        """Bind and start serving; ``port=0`` picks a free port (read it
        back from :attr:`port`).  With ``unix`` set, listen on a
        UNIX-domain socket at that path instead of TCP — the loopback
        fast path: same protocol, roughly a third of the per-round-trip
        kernel cost."""
        self._loop = asyncio.get_running_loop()
        self.core.clock = self._loop.time
        if self._journal is not None:
            # Replay the durable prefix (a fresh journal replays zero
            # records), stamp this boot, honor/reap leases.
            self.recovery = recover_into(self.core, self._journal)
            self.restart_epoch = self._journal.epoch
            # Incident records carry the restart epoch, so forensics
            # can tell which process lifetime a deadlock belongs to.
            self.core.restart_epoch = self.restart_epoch
        self._tasks.append(asyncio.ensure_future(self._writer_loop()))
        self._tasks.append(asyncio.ensure_future(self._reaper_loop()))
        # A deadlock-free policy (the nowait lane) has nothing for a
        # periodic detector task to find.
        if self.period is not None and self.core.policy.wants_periodic:
            self._tasks.append(asyncio.ensure_future(self._detector_loop()))
        if unix is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=unix
            )
            self.unix = unix
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host, port
            )
            address = self._server.sockets[0].getsockname()
            self.host, self.port = address[0], address[1]
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop serving: close the listener, every session and task."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self.core.sessions.values()):
            self.core.close_session(session)
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks.clear()
        if self.core.journal is not None:
            self.core.journal.close()

    async def crash(self) -> None:
        """Tear down as if ``kill -9`` hit after the last flush: drop
        the journal's unwritten tail and journal *nothing* during
        shutdown (no close records), so a successor replaying the file
        sees exactly the durable prefix.  Test hook."""
        journal, self.core.journal = self.core.journal, None
        if journal is not None:
            journal.abandon()
        await self.aclose()

    # -- the single-writer queue -------------------------------------------

    async def _submit(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` on the writer task; returns (or raises) its result.
        Every touch of the core goes through here."""
        future = self._loop.create_future()
        await self._ops.put((fn, future))
        return await future

    async def _writer_loop(self) -> None:
        while True:
            fn, future = await self._ops.get()
            try:
                result = fn()
            except Exception as exc:  # delivered to the submitter
                if not future.done():
                    future.set_exception(exc)
                else:  # pragma: no cover - submitter went away
                    pass
            else:
                if not future.done():
                    future.set_result(result)
            self.core.pump()
            # Group commit: everything this pass journaled goes durable
            # in one write+fsync.  The submitter coroutines woken by
            # set_result above cannot run until this task yields at the
            # queue await, so no reply ever precedes its records.
            if self.core.journal is not None:
                flush_started = perf_counter()
                if self.core.journal.flush():
                    self.core.stats.journal_flushes += 1
                    if self.core.telemetry.enabled:
                        self.core.telemetry.registry.histogram(
                            "repro_journal_fsync_seconds",
                            help="write+fsync latency of one journal "
                            "group commit",
                            buckets=_FSYNC_BUCKETS,
                        ).observe(perf_counter() - flush_started)

    # -- background tasks ------------------------------------------------------

    async def _detector_loop(self) -> None:
        # The policy may retune the interval between passes (the
        # adaptive controller); consult it every iteration.
        while True:
            interval = self.core.policy.current_period(self.period)
            await asyncio.sleep(
                self.period if interval is None else interval
            )
            await self._submit(self.core.detect_step)

    async def _reaper_loop(self) -> None:
        while True:
            now = self._loop.time()
            deadline = self.core.next_deadline()
            # Sleep toward the earliest deadline, but never long enough
            # that a freshly connected short-lease session could expire
            # unnoticed for more than ~0.1s.
            wake = deadline - now if deadline is not None else 0.1
            await asyncio.sleep(min(max(wake, 0.02), 0.1))
            await self._submit(self.core.expire_sessions)

    # -- the reader-task fast lane -------------------------------------------

    def _apply(self, fn: Callable[[], object]):
        """Run one core step *now*, on the calling task.

        The mirror of one :meth:`_writer_loop` pass — run, pump, group
        flush — used by the v2 inline dispatch lane.  Safe because
        core steps are synchronous and the writer task only ever
        suspends between ops (at its queue get), never inside one, so
        the lock table cannot be mid-mutation when the reader runs.
        """
        try:
            return fn()
        finally:
            self.core.pump()
            if self.core.journal is not None:
                flush_started = perf_counter()
                if self.core.journal.flush():
                    self.core.stats.journal_flushes += 1
                    if self.core.telemetry.enabled:
                        self.core.telemetry.registry.histogram(
                            "repro_journal_fsync_seconds",
                            help="write+fsync latency of one journal "
                            "group commit",
                            buckets=_FSYNC_BUCKETS,
                        ).observe(perf_counter() - flush_started)

    # -- connection handling -----------------------------------------------------

    def _observe_frame(
        self, codec_name: str, direction: str, nbytes: int, seconds: float
    ) -> None:
        """Sampled wire telemetry: one observed frame stands for the
        :data:`_WIRE_SAMPLE` frames around it."""
        registry = self.core.telemetry.registry
        labels = {"codec": codec_name, "direction": direction}
        registry.counter(
            "repro_wire_frames_total",
            help="frames on the wire (sampled, x{})".format(_WIRE_SAMPLE),
            labels=labels,
        ).inc(_WIRE_SAMPLE)
        registry.histogram(
            "repro_frame_bytes",
            help="on-wire frame size per codec and direction (sampled)",
            labels=labels,
            buckets=_FRAME_BUCKETS,
        ).observe(nbytes)
        registry.histogram(
            "repro_wire_codec_seconds",
            help="pure encode/decode latency of one frame (sampled; "
            "direction=in is decode, direction=out is encode)",
            labels=labels,
            buckets=_CODEC_BUCKETS,
        ).observe(seconds)

    async def _handle_connection(self, reader, writer) -> None:
        session: Optional[Session] = None
        codec = JSON_CODEC
        max_frame = self.max_frame
        drain_lock = asyncio.Lock()
        tasks: Set[asyncio.Task] = set()
        transport = writer.transport
        telemetry = self.core.telemetry
        nframes = 0

        async def send(message: dict, reply_to: Optional[str] = None) -> None:
            message.setdefault("epoch", self.restart_epoch)
            if telemetry.enabled and nframes & _WIRE_SAMPLE_MASK == 0:
                started = perf_counter()
                data = codec.encode(message, reply_to, max_frame)
                self._observe_frame(
                    codec.name, "out", len(data), perf_counter() - started
                )
            else:
                data = codec.encode(message, reply_to, max_frame)
            # ``write`` appends the whole frame atomically; the lock only
            # serializes drains (the flow-control waiter is single-slot),
            # and a drain is only worth its loop hop once the transport
            # buffer is actually deep.
            writer.write(data)
            if transport.get_write_buffer_size() > _DRAIN_THRESHOLD:
                async with drain_lock:
                    await writer.drain()

        try:
            # The handshake is always JSON; the reply tells both sides
            # which codec every later frame uses.
            first = await read_frame(reader, max_frame)
            if first is None:
                return
            handshake = first.get("op")
            if handshake not in ("hello", "resume"):
                await send(
                    error(
                        first.get("id"),
                        "handshake",
                        "first frame must be a hello or a resume",
                    )
                )
                return
            # Both handshakes run on the writer so their journal
            # records are flushed before the reply goes out.
            try:
                if handshake == "resume":
                    session = await self._submit(
                        lambda: self.core.resume_session(
                            first.get("session"),
                            first.get("token"),
                            transport=writer,
                        )
                    )
                else:
                    session = await self._submit(
                        lambda: self.core.open_session(
                            lease=first.get("lease"), transport=writer
                        )
                    )
            except ServiceError as exc:
                await send(error(first.get("id"), exc.code, exc.message))
                return
            granted = negotiate(first.get("wire"))
            reply = ok(
                first.get("id"),
                session=session.sid,
                lease=session.lease,
                token=session.token,
                tids=sorted(session.tids),
                server={
                    "version": __version__,
                    # Capability advertisement: the newest wire dialect
                    # this server speaks (the grant itself is the
                    # top-level ``wire`` field, present only when
                    # granted).
                    "wire": WIRE_BINARY,
                    "period": self.period,
                    "continuous": self.continuous,
                    "shards": self.core.shards,
                    "policy": self.core.policy.name,
                    "epoch": self.restart_epoch,
                },
            )
            if granted != WIRE_JSON:
                # The switch signal: a v1 client never asked, so its
                # reply — like every v1 frame — stays bit-for-bit.
                reply["wire"] = granted
            await send(reply)
            if granted != WIRE_JSON:
                codec = codec_for(granted)
                self.stats.binary_connections += 1
            read_metered = codec.read_metered
            fast_handlers = self._FAST_HANDLERS if codec.inline else None
            while True:
                frame, nbytes, decode_seconds = await read_metered(
                    reader, max_frame
                )
                if frame is None:
                    break
                nframes += 1
                if telemetry.enabled and nframes & _WIRE_SAMPLE_MASK == 0:
                    self._observe_frame(
                        codec.name, "in", nbytes, decode_seconds
                    )
                self.core.touch_session(session)
                op = frame.get("op")
                if op == "goodbye":
                    session.detached = True
                    await send(ok(frame.get("id")))
                    break
                if fast_handlers is not None and not tasks:
                    # The v2 inline lane: hot, never-parking ops run on
                    # this task — no per-frame task spawn, no writer
                    # queue hop.  Only when no spawned task is in
                    # flight, so pipelined frames keep arrival order.
                    handler = fast_handlers.get(op)
                    if handler is not None:
                        self.stats.inline_requests += 1
                        await self._dispatch(
                            session, frame, send, handler
                        )
                        continue
                task = asyncio.ensure_future(
                    self._dispatch(session, frame, send)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except FrameTooLarge as exc:
            self.stats.protocol_errors += 1
            try:
                await send(error(None, "frame-too-large", str(exc)))
            except (ConnectionError, RuntimeError, ProtocolError):
                pass
        except ProtocolError as exc:
            self.stats.protocol_errors += 1
            try:
                await send(error(None, "protocol", str(exc)))
            except (ConnectionError, RuntimeError):
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown; fall through to the cleanup below
        finally:
            for task in list(tasks):
                task.cancel()
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            if session is not None and not session.closed:
                if not session.detached:
                    self.stats.rude_disconnects += 1
                self.core.close_session(session)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, session: Session, frame: dict, send, handler=None
    ) -> None:
        request_id = frame.get("id")
        self.stats.requests += 1
        try:
            if session.closed:
                raise ServiceError(
                    "session-expired",
                    "session {} is closed (lease expired?)".format(
                        session.sid
                    ),
                )
            if handler is None:
                handler = self._HANDLERS.get(frame.get("op"))
            if handler is None:
                raise ServiceError(
                    "bad-op", "unknown operation {!r}".format(frame.get("op"))
                )
            await handler(self, session, frame, send)
        except asyncio.CancelledError:
            raise
        except ServiceError as exc:
            await self._safe_send(send, error(request_id, exc.code, exc.message))
        except KeyError as exc:
            await self._safe_send(
                send,
                error(
                    request_id,
                    "bad-request",
                    "missing field {}".format(exc),
                ),
            )
        except ReproError as exc:
            await self._safe_send(send, error(request_id, "error", str(exc)))
        except Exception as exc:  # pragma: no cover - last resort
            await self._safe_send(
                send, error(request_id, "internal", repr(exc))
            )

    @staticmethod
    async def _safe_send(send, message: dict) -> None:
        try:
            await send(message)
        except (ConnectionError, RuntimeError):
            pass

    # -- operations --------------------------------------------------------------

    async def _op_heartbeat(self, session, frame, send) -> None:
        # The lease was already renewed on frame receipt.
        await send(
            ok(
                frame.get("id"),
                lease=session.lease,
                remaining=max(session.deadline - self._loop.time(), 0.0),
            ),
            "heartbeat",
        )

    async def _op_begin(self, session, frame, send) -> None:
        tid = await self._submit(
            lambda: self.core.begin_step(session, frame.get("tid"))
        )
        await send(ok(frame.get("id"), tid=tid), "begin")

    async def _op_lock(self, session, frame, send) -> None:
        tid = int(frame["tid"])
        rid = str(frame["rid"])
        mode = parse_mode(frame["mode"])
        wait = bool(frame.get("wait", True))
        timeout = frame.get("timeout")
        future = self._loop.create_future()

        def resolve(status: str) -> None:
            if not future.done():
                future.set_result(status)

        def step():
            return self.core.lock_step(
                session,
                tid,
                rid,
                mode,
                wait=wait,
                callback=resolve,
                trace=frame.get("trace"),
                parent=frame.get("span"),
            )

        status, event, parked = await self._submit(step)
        if status == "parked":
            done, _ = await asyncio.wait(
                [future],
                timeout=None if timeout is None else float(timeout),
            )
            if done:
                status = future.result()
            else:
                # Timed out: un-park on the writer (the resolution wins
                # if it got there first), but leave the request queued
                # so a retried lock resumes the same position.
                status = await self._submit(
                    lambda: self.core.cancel_wait(tid, parked)
                )
        await send(
            ok(frame.get("id"), status=status, event=event), "lock"
        )

    async def _op_commit(self, session, frame, send) -> None:
        await self._finish(session, frame, send, aborting=False)

    async def _op_abort(self, session, frame, send) -> None:
        await self._finish(session, frame, send, aborting=True)

    async def _finish(self, session, frame, send, aborting: bool) -> None:
        tid = int(frame["tid"])
        grants = await self._submit(
            lambda: self.core.finish_step(session, tid, aborting)
        )
        await send(
            ok(frame.get("id"), tid=tid, grants=grants),
            "abort" if aborting else "commit",
        )

    async def _op_batch(self, session, frame, send) -> None:
        results = await self._submit(
            lambda: self.core.batch_step(session, frame.get("ops"))
        )
        await send(ok(frame.get("id"), results=results), "batch")

    async def _op_detect(self, session, frame, send) -> None:
        result = await self._submit(self.core.detect_step)
        await send(ok(frame.get("id"), **detection_to_dict(result)))

    async def _op_snapshot(self, session, frame, send) -> None:
        payload = await self._submit(self.core.snapshot_step)
        await send(ok(frame.get("id"), snapshot=payload), "snapshot")

    async def _op_resolve(self, session, frame, send) -> None:
        reply = await self._submit(
            lambda: self.core.resolve_step(frame.get("plan"))
        )
        await send(ok(frame.get("id"), reply=reply), "resolve")

    async def _op_inspect(self, session, frame, send) -> None:
        payload = await self._submit(
            lambda: admin.inspect_payload(self.manager)
        )
        await send(ok(frame.get("id"), **payload))

    async def _op_graph(self, session, frame, send) -> None:
        dot = bool(frame.get("dot", False))
        payload = await self._submit(
            lambda: admin.graph_payload(self.manager, dot=dot)
        )
        await send(ok(frame.get("id"), **payload))

    async def _op_dump(self, session, frame, send) -> None:
        payload = await self._submit(
            lambda: admin.dump_payload(self.manager)
        )
        await send(ok(frame.get("id"), **payload))

    async def _op_log(self, session, frame, send) -> None:
        limit = int(frame.get("limit", 100))
        payload = await self._submit(
            lambda: admin.log_payload(self.manager, limit=limit)
        )
        await send(ok(frame.get("id"), **payload))

    async def _op_stats(self, session, frame, send) -> None:
        payload = await self._submit(self.core.stats_payload)
        await send(ok(frame.get("id"), stats=payload))

    async def _op_metrics(self, session, frame, send) -> None:
        payload = await self._submit(
            lambda: admin.metrics_payload(self.core)
        )
        await send(ok(frame.get("id"), **payload))

    async def _op_spans(self, session, frame, send) -> None:
        limit = int(frame.get("limit", 0))
        annotations = bool(frame.get("annotations", False))
        payload = await self._submit(
            lambda: admin.spans_payload(
                self.core, limit=limit, annotations=annotations
            )
        )
        await send(ok(frame.get("id"), **payload))

    async def _op_holding(self, session, frame, send) -> None:
        tid = int(frame["tid"])
        held = await self._submit(lambda: self.manager.holding(tid))
        await send(
            ok(
                frame.get("id"),
                holding={rid: mode.name for rid, mode in held.items()},
            )
        )

    async def _op_deadlocked(self, session, frame, send) -> None:
        value = await self._submit(self.manager.deadlocked)
        await send(ok(frame.get("id"), deadlocked=value))

    # -- the v2 inline lane -------------------------------------------------
    #
    # Fast variants of the hot, never-parking ops: the same semantics
    # as their _op_* twins, but the core step runs directly on the
    # reader task (:meth:`_apply`) instead of hopping through the
    # writer queue.  ``lock`` stays on the task path — a parked wait
    # must not stall the connection's reader.

    async def _fast_begin(self, session, frame, send) -> None:
        tid = self._apply(
            lambda: self.core.begin_step(session, frame.get("tid"))
        )
        await send(ok(frame.get("id"), tid=tid), "begin")

    async def _fast_commit(self, session, frame, send) -> None:
        await self._fast_finish(session, frame, send, aborting=False)

    async def _fast_abort(self, session, frame, send) -> None:
        await self._fast_finish(session, frame, send, aborting=True)

    async def _fast_finish(self, session, frame, send, aborting) -> None:
        tid = int(frame["tid"])
        grants = self._apply(
            lambda: self.core.finish_step(session, tid, aborting)
        )
        await send(
            ok(frame.get("id"), tid=tid, grants=grants),
            "abort" if aborting else "commit",
        )

    async def _fast_batch(self, session, frame, send) -> None:
        results = self._apply(
            lambda: self.core.batch_step(session, frame.get("ops"))
        )
        await send(ok(frame.get("id"), results=results), "batch")

    async def _fast_snapshot(self, session, frame, send) -> None:
        payload = self._apply(self.core.snapshot_step)
        await send(ok(frame.get("id"), snapshot=payload), "snapshot")

    async def _fast_resolve(self, session, frame, send) -> None:
        reply = self._apply(
            lambda: self.core.resolve_step(frame.get("plan"))
        )
        await send(ok(frame.get("id"), reply=reply), "resolve")

    _HANDLERS: Dict[
        str, Callable[["LockServer", Session, dict, object], Awaitable[None]]
    ] = {
        "heartbeat": _op_heartbeat,
        "begin": _op_begin,
        "lock": _op_lock,
        "commit": _op_commit,
        "abort": _op_abort,
        "batch": _op_batch,
        "detect": _op_detect,
        "snapshot": _op_snapshot,
        "resolve": _op_resolve,
        "inspect": _op_inspect,
        "graph": _op_graph,
        "dump": _op_dump,
        "log": _op_log,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "spans": _op_spans,
        "holding": _op_holding,
        "deadlocked": _op_deadlocked,
    }

    _FAST_HANDLERS: Dict[
        str, Callable[["LockServer", Session, dict, object], Awaitable[None]]
    ] = {
        "heartbeat": _op_heartbeat,  # touches no core state: already fast
        "begin": _fast_begin,
        "commit": _fast_commit,
        "abort": _fast_abort,
        "batch": _fast_batch,
        "snapshot": _fast_snapshot,
        "resolve": _fast_resolve,
    }


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> LockServer:
    """Create and start a :class:`LockServer` (convenience wrapper)."""
    server = LockServer(**kwargs)
    await server.start(host, port)
    return server
