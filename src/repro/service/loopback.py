"""An embedded lock server for tests, benchmarks and examples.

:class:`LoopbackServer` runs a :class:`~repro.service.server.LockServer`
on a private event loop in a daemon thread, binds to an ephemeral
loopback port (or a UNIX-domain socket with ``unix=...``) and exposes
``host``/``port`` once ready — the pattern every in-process consumer
needs: start, point clients at it, close.

    with LoopbackServer(period=0.05) as server:
        with RemoteLockManager(server.host, server.port) as manager:
            manager.acquire(1, "R", LockMode.X)

:class:`EmbeddedLockManager` is the zero-serialization fast path for
the embed case: it talks to the loopback server's core with structured
objects through the single-writer submit queue — no frames, no codec,
no socket — while keeping the session/lease/parked-wait semantics (and
the stats counters) a wire client would see.

    with LoopbackServer(period=0.05) as server:
        with EmbeddedLockManager(server) as manager:
            tid = manager.begin()
            manager.acquire(tid, "R", LockMode.X)
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.errors import TransactionAborted
from ..core.modes import LockMode, parse_mode
from .eventloop import loop_factory
from .server import LockServer


class LoopbackServer:
    """Run a lock server on a background thread (see module docstring).

    ``unix`` binds a UNIX-domain socket instead of TCP; ``use_uvloop``
    runs the server thread on a uvloop event loop when the optional
    ``perf`` extra is installed (silently staying on stock asyncio when
    it is not).  Remaining keyword arguments are forwarded to
    :class:`~repro.service.server.LockServer`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        unix: Optional[str] = None,
        use_uvloop: bool = False,
        **server_kwargs,
    ) -> None:
        self._host_arg = host
        self._unix_arg = unix
        self._use_uvloop = use_uvloop
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[LockServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.unix: Optional[str] = None

    def start(self) -> "LoopbackServer":
        """Start the server thread; returns once the socket is bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-lock-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None and self.unix is None:
            raise RuntimeError("lock server failed to start in time")
        return self

    def _thread_main(self) -> None:
        try:
            with asyncio.Runner(
                loop_factory=loop_factory(self._use_uvloop)
            ) as runner:
                runner.run(self._serve())
        except BaseException as exc:  # surface startup failures
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = LockServer(**self._server_kwargs)
        if self._unix_arg is not None:
            await self.server.start(unix=self._unix_arg)
            self.unix = self.server.unix
        else:
            await self.server.start(self._host_arg, 0)
            self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.aclose()

    def submit(self, fn, timeout: float = 10.0):
        """Run ``fn()`` on the server's single-writer task from any
        thread and return its result.

        This is the sanctioned way for tests and tools to look at (or
        poke) the live server state — the callable runs serialized with
        every other lock-table operation, so e.g.
        ``submit(lambda: verify_table(server.server.manager.table))``
        observes a consistent snapshot.
        """
        if self._loop is None or self.server is None:
            raise RuntimeError("loopback server is not running")
        handle = asyncio.run_coroutine_threadsafe(
            self.server._submit(fn), self._loop
        )
        return handle.result(timeout=timeout)

    def close(self) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "LoopbackServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class EmbeddedLockManager:
    """Zero-serialization lock manager over a :class:`LoopbackServer`.

    Mirrors the blocking :class:`~repro.service.client.RemoteLockManager`
    surface (``begin``/``acquire``/``batch``/``commit``/``abort``/
    ``detect``/``holding``/``deadlocked``/``stats``), but every
    operation is a plain function submitted to the server's
    single-writer task: requests and results cross the thread boundary
    as the structured objects themselves.  This is the protocol-cost
    floor the wire codecs are measured against — same core, same
    session accounting, zero encode/decode bytes.

    Parked waits keep their wire semantics: a blocking ``acquire``
    registers a :class:`~repro.service.core.ParkedWait` whose callback
    (fired by the server's pump, on the server thread) releases the
    calling thread.
    """

    def __init__(
        self, server: LoopbackServer, lease: Optional[float] = None
    ) -> None:
        if server.server is None:
            raise RuntimeError("loopback server is not running")
        self._server = server
        self._core = server.server.core
        core = self._core
        self._session = server.submit(
            lambda: core.open_session(lease, transport="embed")
        )
        self._closed = False

    def _submit(self, fn, timeout: float = 30.0):
        if self._closed:
            raise RuntimeError("embedded manager is closed")
        return self._server.submit(fn, timeout=timeout)

    # -- locking -----------------------------------------------------------

    def begin(self, tid: Optional[int] = None) -> int:
        core, session = self._core, self._session
        return self._submit(lambda: self._step(core.begin_step, tid))

    def acquire(
        self,
        tid: int,
        rid: str,
        mode: "LockMode | str",
        timeout: Optional[float] = None,
        wait: bool = True,
    ) -> bool:
        """Acquire (or convert to) ``mode`` on ``rid`` for ``tid``.

        Same contract as the remote facade: True on grant, False on
        timeout or an immediate ``wait=False`` block (the request stays
        queued), :class:`TransactionAborted` when a detection pass
        chose ``tid`` as victim.
        """
        lock_mode = mode if isinstance(mode, LockMode) else parse_mode(mode)
        core = self._core
        done = threading.Event()
        box: Dict[str, str] = {}

        def resolved(status: str) -> None:
            box["status"] = status
            done.set()

        status, _event, parked = self._submit(
            lambda: self._step(
                core.lock_step,
                tid,
                rid,
                lock_mode,
                wait=wait,
                callback=resolved,
            )
        )
        if status == "parked":
            if done.wait(timeout):
                status = box["status"]
            else:
                status = self._submit(
                    lambda: core.cancel_wait(tid, parked)
                )
        if status == "granted":
            return True
        if status == "aborted":
            raise TransactionAborted(tid)
        return False  # blocked (wait=False) or timeout

    def commit(self, tid: int) -> None:
        core = self._core
        self._submit(lambda: self._step(core.finish_step, tid, False))

    def abort(self, tid: int) -> None:
        core = self._core
        self._submit(lambda: self._step(core.finish_step, tid, True))

    def batch(self, ops: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Run one op sequence through the core's batch engine — the
        same short-circuit/error envelope as a wire ``batch`` frame,
        minus the frame."""
        op_list = [dict(op) for op in ops]
        core = self._core
        return self._submit(lambda: self._step(core.batch_step, op_list))

    def acquire_many(
        self,
        tid: int,
        accesses: Iterable[Tuple[str, "LockMode | str"]],
        timeout: Optional[float] = None,
    ) -> bool:
        """Acquire a whole lock set, falling back to waiting
        :meth:`acquire` calls for the contended ones."""
        pending = [
            (rid, mode if isinstance(mode, LockMode) else parse_mode(mode))
            for rid, mode in accesses
        ]
        results = self.batch(
            [
                {
                    "op": "lock",
                    "tid": tid,
                    "rid": rid,
                    "mode": mode.name,
                    "wait": False,
                }
                for rid, mode in pending
            ]
        )
        for (rid, mode), result in zip(pending, results):
            if not result.get("ok"):
                error = result.get("error", {})
                if error.get("code") == "aborted":
                    raise TransactionAborted(tid)
                raise RuntimeError(
                    "batch lock failed: {}".format(error or result)
                )
            if result.get("status") == "granted":
                continue
            if not self.acquire(tid, rid, mode, timeout=timeout):
                return False
        return True

    def run_transaction(
        self,
        tid: int,
        accesses: Iterable[Tuple[str, "LockMode | str"]],
        timeout: Optional[float] = None,
    ) -> bool:
        """Begin, acquire every lock, and commit — one structured op.

        The wire-free hot path: where :meth:`acquire_many` mirrors the
        remote facade's frame sequence (a batch round trip, waiting
        acquires, a commit round trip), this crosses the thread
        boundary **once** for an uncontended transaction.  The whole
        begin/lock*/commit sequence runs as a single plain function on
        the single-writer task; no wire-shaped result dicts are built
        and no frame bytes exist anywhere.  Contended transactions fall
        back to waiting :meth:`acquire` calls for the blocked suffix —
        the same shape the remote client uses — then commit.

        Returns True when the transaction committed, False when a lock
        wait timed out (the transaction is left open, lock requests
        still queued, exactly like a timed-out :meth:`acquire`); raises
        :class:`TransactionAborted` when a detection pass chose ``tid``
        as victim.
        """
        pending = [
            (rid, mode if isinstance(mode, LockMode) else parse_mode(mode))
            for rid, mode in accesses
        ]
        core = self._core

        def txn() -> Tuple[str, int]:
            session = self._session
            core.touch_session(session)
            core.stats.requests += 1
            core.begin_step(session, tid)
            for index, (rid, mode) in enumerate(pending):
                status, _event, _parked = core.lock_step(
                    session, tid, rid, mode, wait=False
                )
                if status == "aborted":
                    return "aborted", index
                if status != "granted":
                    return "blocked", index
            core.finish_step(session, tid, False)
            return "committed", len(pending)

        status, index = self._submit(txn)
        if status == "committed":
            return True
        if status == "aborted":
            raise TransactionAborted(tid)
        # The blocked request is already queued; resume it as a waiting
        # acquire, finish the remaining lock set, then commit.
        for rid, mode in pending[index:]:
            if not self.acquire(tid, rid, mode, timeout=timeout):
                return False
        self.commit(tid)
        return True

    # -- detection ---------------------------------------------------------

    def detect(self):
        """Run one detection-resolution pass; returns the live
        :class:`~repro.core.detection.DetectionResult` (the embed case
        needs no wire mirror)."""
        core = self._core
        return self._submit(lambda: self._step(core.detect_step))

    # -- introspection -----------------------------------------------------

    def holding(self, tid: int) -> Dict[str, LockMode]:
        manager = self._core.manager
        return self._submit(lambda: dict(manager.holding(tid)))

    def deadlocked(self) -> bool:
        manager = self._core.manager
        return self._submit(manager.deadlocked)

    def stats(self) -> Dict[str, int]:
        core = self._core
        return self._submit(core.stats_payload)

    @property
    def wire(self) -> int:
        """The embed path has no wire at all."""
        return 0

    # -- internals ---------------------------------------------------------

    def _step(self, step, *args, **kwargs):
        """One core step under this facade's session: touch the lease
        and count the request exactly as a wire frame would."""
        core, session = self._core, self._session
        core.touch_session(session)
        core.stats.requests += 1
        return step(session, *args, **kwargs)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the session cleanly (idempotent)."""
        if self._closed:
            return
        core, session = self._core, self._session
        try:
            self._server.submit(lambda: core.close_session(session))
        except Exception:
            pass
        self._closed = True

    def __enter__(self) -> "EmbeddedLockManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
