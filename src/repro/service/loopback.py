"""An embedded lock server for tests, benchmarks and examples.

:class:`LoopbackServer` runs a :class:`~repro.service.server.LockServer`
on a private event loop in a daemon thread, binds to an ephemeral
loopback port and exposes ``host``/``port`` once ready — the pattern
every in-process consumer needs: start, point clients at it, close.

    with LoopbackServer(period=0.05) as server:
        with RemoteLockManager(server.host, server.port) as manager:
            manager.acquire(1, "R", LockMode.X)
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .server import LockServer


class LoopbackServer:
    """Run a lock server on a background thread (see module docstring).

    Keyword arguments are forwarded to
    :class:`~repro.service.server.LockServer`.
    """

    def __init__(self, host: str = "127.0.0.1", **server_kwargs) -> None:
        self._host_arg = host
        self._server_kwargs = server_kwargs
        self._ready = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[LockServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def start(self) -> "LoopbackServer":
        """Start the server thread; returns once the port is bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._thread_main, name="repro-lock-server", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("lock server failed to start in time")
        return self

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # surface startup failures
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = LockServer(**self._server_kwargs)
        await self.server.start(self._host_arg, 0)
        self.host, self.port = self.server.host, self.server.port
        self._ready.set()
        await self._stop.wait()
        await self.server.aclose()

    def submit(self, fn, timeout: float = 10.0):
        """Run ``fn()`` on the server's single-writer task from any
        thread and return its result.

        This is the sanctioned way for tests and tools to look at (or
        poke) the live server state — the callable runs serialized with
        every other lock-table operation, so e.g.
        ``submit(lambda: verify_table(server.server.manager.table))``
        observes a consistent snapshot.
        """
        if self._loop is None or self.server is None:
            raise RuntimeError("loopback server is not running")
        handle = asyncio.run_coroutine_threadsafe(
            self.server._submit(fn), self._loop
        )
        return handle.result(timeout=timeout)

    def close(self) -> None:
        """Stop the server and join its thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
        self._thread.join(timeout=10.0)
        self._thread = None

    def __enter__(self) -> "LoopbackServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
