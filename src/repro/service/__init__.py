"""repro.service — the lock manager as a networked service.

Turns the in-process :class:`~repro.lockmgr.manager.LockManager` into
infrastructure: an asyncio TCP server
(:class:`~repro.service.server.LockServer`) speaking a length-prefixed
JSON protocol (:mod:`repro.service.protocol`), with per-connection
sessions and leases so crashed clients cannot wedge the lock table, a
periodic-detector background task, and remote introspection
(:mod:`repro.service.admin`).  Clients come in two flavors:
:class:`~repro.service.client.AsyncLockClient` for asyncio code and the
blocking :class:`~repro.service.client.RemoteLockManager`, a drop-in
mirror of :class:`~repro.lockmgr.concurrent.ConcurrentLockManager`.

    # server (or: python -m repro serve --port 7411)
    server = await serve(port=7411, period=0.5, lease=5.0)

    # client — identical code runs against ConcurrentLockManager
    with RemoteLockManager("127.0.0.1", 7411) as manager:
        manager.acquire(1, "R1", LockMode.X)
        manager.commit(1)
"""

from .admin import ServiceStats, render_stats
from .client import AsyncLockClient, RemoteLockManager
from .core import ParkedWait, ServiceCore, Session
from .eventloop import install_uvloop, uvloop_available
from .journal import RecoveryReport, SessionJournal, recover_into
from .loopback import EmbeddedLockManager, LoopbackServer
from .protocol import (
    MAX_FRAME,
    FrameTooLarge,
    ProtocolError,
    RemoteDetectionResult,
    ServiceError,
    WIRE_VERSION,
)
from .server import LockServer, serve
from .wire import (
    BINARY_CODEC,
    JSON_CODEC,
    WIRE_BINARY,
    WIRE_JSON,
    codec_for,
    negotiate,
    resolve_wire,
)

__all__ = [
    "AsyncLockClient",
    "BINARY_CODEC",
    "EmbeddedLockManager",
    "FrameTooLarge",
    "JSON_CODEC",
    "LockServer",
    "LoopbackServer",
    "MAX_FRAME",
    "ParkedWait",
    "ProtocolError",
    "RecoveryReport",
    "RemoteDetectionResult",
    "RemoteLockManager",
    "ServiceCore",
    "ServiceError",
    "ServiceStats",
    "Session",
    "SessionJournal",
    "WIRE_BINARY",
    "WIRE_JSON",
    "WIRE_VERSION",
    "codec_for",
    "install_uvloop",
    "negotiate",
    "recover_into",
    "render_stats",
    "resolve_wire",
    "serve",
    "uvloop_available",
]
