"""Clients for the lock service.

Two layers:

* :class:`AsyncLockClient` — the asyncio client.  One TCP connection,
  request/response frames correlated by id, so any number of
  transactions can block in ``lock`` concurrently while heartbeats keep
  the session lease alive on the same socket.
* :class:`RemoteLockManager` — a *blocking* facade that mirrors the
  :class:`~repro.lockmgr.concurrent.ConcurrentLockManager` API
  (``acquire``/``commit``/``abort``/``detect``/``holding``/
  ``deadlocked``/``snapshot``, context-manager lifetime), so code
  written against the embedded thread-safe manager runs against a
  remote server unchanged.  It owns a private event loop on a daemon
  thread; every public call is thread-safe.
"""

from __future__ import annotations

import asyncio
import os
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.errors import TransactionAborted
from ..core.modes import LockMode, parse_mode
from .protocol import (
    MAX_FRAME,
    ProtocolError,
    RemoteDetectionResult,
    ServiceError,
    raise_for_error,
    request,
)
from .wire import JSON_CODEC, WIRE_BINARY, WIRE_JSON, codec_for, resolve_wire

#: Mirror of the server's drain policy: ``write`` buffers, and the
#: flow-control drain is only awaited once the transport buffer is deep.
_DRAIN_THRESHOLD = 64 * 1024


class AsyncLockClient:
    """Asyncio client for one :class:`~repro.service.server.LockServer`
    session.  Build one with :meth:`connect`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        wire: "int | str | None" = None,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: Dict[int, asyncio.Future] = {}
        self._next_id = 1
        self._write_lock = asyncio.Lock()
        #: The codec for every frame after the handshake.  The
        #: handshake itself is always JSON; the reply's ``wire`` field
        #: switches this (inside the read loop, so no frame is ever
        #: parsed with the wrong codec).
        self._codec = JSON_CODEC
        self._want_wire = resolve_wire(wire)
        self._max_frame = max_frame
        #: The negotiated wire version (1 until the handshake grants 2).
        self.wire: int = WIRE_JSON
        self._reader_task: Optional[asyncio.Task] = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._closed = False
        self._conn_error: Optional[Exception] = None
        self.session: Optional[str] = None
        self.lease: Optional[float] = None
        self.server_info: Dict[str, Any] = {}
        #: Resume credential from the handshake: present it to a
        #: restarted server (:meth:`resume`) to reclaim the session.
        self.token: Optional[str] = None
        #: The server's restart epoch as of the handshake; every
        #: response carries the current one (:attr:`last_epoch`), so a
        #: jump means the server was reincarnated mid-conversation.
        self.epoch: int = 0
        self.last_epoch: int = 0
        #: Transaction ids the server reported live at resume time.
        self.resumed_tids: List[int] = []
        #: tid -> trace id stamped on every lock/batch frame of that
        #: transaction, so server-side spans across workers share one
        #: trace (``trace-export`` groups by it).
        self._traces: Dict[int, str] = {}
        self._host: Optional[str] = None
        self._port: Optional[int] = None

    def trace_of(self, tid: int) -> str:
        """The trace id this client stamps on ``tid``'s frames (minted
        on first use, stable for the transaction's lifetime)."""
        trace = self._traces.get(tid)
        if trace is None:
            trace = "trace-" + os.urandom(6).hex()
            self._traces[tid] = trace
        return trace

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: Optional[str] = None,
        port: Optional[int] = None,
        lease: Optional[float] = None,
        heartbeat: bool = True,
        wire: "int | str | None" = None,
        unix: Optional[str] = None,
        max_frame: int = MAX_FRAME,
    ) -> "AsyncLockClient":
        """Open a connection, perform the hello handshake and (by
        default) start the background heartbeat task.

        ``wire`` picks the framing to request (``"json"``/``"binary"``,
        default from ``REPRO_WIRE``, JSON when unset); a server that
        does not grant it leaves the connection on JSON v1.  ``unix``
        connects to a UNIX-domain socket path instead of TCP."""
        if unix is not None:
            reader, writer = await asyncio.open_unix_connection(unix)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, wire=wire, max_frame=max_frame)
        client._unix = unix
        client._reader_task = asyncio.ensure_future(client._read_loop())
        fields = {} if lease is None else {"lease": lease}
        if client._want_wire != WIRE_JSON:
            fields["wire"] = client._want_wire
        try:
            response = await client._call("hello", **fields)
        except BaseException:
            await client._teardown()
            raise
        client._absorb_handshake(response, host, port)
        if heartbeat:
            client._heartbeat_task = asyncio.ensure_future(
                client._heartbeat_loop()
            )
        return client

    @classmethod
    async def resume(
        cls,
        host: Optional[str],
        port: Optional[int],
        session: str,
        token: str,
        heartbeat: bool = True,
        wire: "int | str | None" = None,
        unix: Optional[str] = None,
        max_frame: int = MAX_FRAME,
    ) -> "AsyncLockClient":
        """Reclaim a session a restarted server recovered from its
        journal: ``resume`` instead of ``hello`` as the first frame,
        presenting the :attr:`token` from the original handshake.
        Raises :class:`ServiceError` (``unknown-session``/``bad-token``/
        ``session-busy``) when the server will not honor it."""
        if unix is not None:
            reader, writer = await asyncio.open_unix_connection(unix)
        else:
            reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, wire=wire, max_frame=max_frame)
        client._unix = unix
        client._reader_task = asyncio.ensure_future(client._read_loop())
        fields: Dict[str, Any] = {"session": session, "token": token}
        if client._want_wire != WIRE_JSON:
            fields["wire"] = client._want_wire
        try:
            response = await client._call("resume", **fields)
        except BaseException:
            await client._teardown()
            raise
        client._absorb_handshake(response, host, port)
        if heartbeat:
            client._heartbeat_task = asyncio.ensure_future(
                client._heartbeat_loop()
            )
        return client

    def _absorb_handshake(
        self, response: Dict[str, Any], host: str, port: int
    ) -> None:
        self.session = response["session"]
        self.lease = float(response["lease"])
        self.server_info = dict(response.get("server", {}))
        self.token = response.get("token")
        self.epoch = int(response.get("epoch", 0))
        self.last_epoch = self.epoch
        self.resumed_tids = [int(tid) for tid in response.get("tids", [])]
        self._host, self._port = host, port

    async def close(self) -> None:
        """Say goodbye (clean detach) and drop the connection."""
        if self._closed:
            return
        self._closed = True
        self.suspend_heartbeat()
        try:
            await asyncio.wait_for(self._send_raw("goodbye"), timeout=2.0)
        except (ServiceError, ConnectionError, OSError, asyncio.TimeoutError):
            pass
        await self._teardown()

    async def _teardown(self) -> None:
        self._closed = True
        self.suspend_heartbeat()
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._fail_pending(ConnectionError("connection closed"))

    async def __aenter__(self) -> "AsyncLockClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def suspend_heartbeat(self) -> None:
        """Stop renewing the lease (tests use this to simulate a hung
        client whose process still holds the TCP connection)."""
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None

    async def _heartbeat_loop(self) -> None:
        interval = max(self.lease / 3.0, 0.02)
        while True:
            await asyncio.sleep(interval)
            try:
                await self._call("heartbeat")
            except (ServiceError, ConnectionError, OSError):
                return

    # -- plumbing --------------------------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await self._codec.read(self._reader, self._max_frame)
                if frame is None:
                    break
                if "epoch" in frame:
                    self.last_epoch = int(frame["epoch"])
                if "wire" in frame and frame.get("ok"):
                    # The handshake reply granting a codec switch: take
                    # it *here*, before parsing the next frame and
                    # before the handshake waiter can send under it.
                    granted = frame.get("wire")
                    if granted == WIRE_BINARY:
                        self._codec = codec_for(granted)
                        self.wire = granted
                future = self._pending.pop(frame.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
                elif frame.get("ok") is False and frame.get("id") is None:
                    # A connection-level refusal (frame-too-large,
                    # protocol error): no request id to route it to, so
                    # every in-flight call gets the answer — the server
                    # closes the connection right after.
                    for pending in self._pending.values():
                        if not pending.done():
                            pending.set_result(frame)
                    self._pending.clear()
        except (ProtocolError, ConnectionError, OSError) as exc:
            self._fail_pending(exc)
        else:
            self._fail_pending(ConnectionError("server closed the connection"))

    def _fail_pending(self, exc: Exception) -> None:
        # Remember the terminal error: once the read loop is gone, any
        # *future* request would park a response future nobody can ever
        # complete — _send_raw uses this to fail fast instead.
        if self._conn_error is None:
            self._conn_error = exc
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _send_raw(self, op: str, **fields: Any) -> Dict[str, Any]:
        if self._conn_error is not None:
            raise ConnectionError(
                "connection lost: {}".format(self._conn_error)
            )
        request_id = self._next_id
        self._next_id += 1
        future = asyncio.get_event_loop().create_future()
        self._pending[request_id] = future
        message = request(request_id, op, **fields)
        # ``write`` appends the whole frame atomically; the lock only
        # serializes drains, and a drain is only worth its loop hop
        # once the transport buffer is actually deep.
        self._writer.write(
            self._codec.encode(message, None, self._max_frame)
        )
        if (
            self._writer.transport.get_write_buffer_size()
            > _DRAIN_THRESHOLD
        ):
            async with self._write_lock:
                await self._writer.drain()
        try:
            response = await future
        finally:
            self._pending.pop(request_id, None)
        return raise_for_error(response)

    async def _call(self, op: str, **fields: Any) -> Dict[str, Any]:
        if self._closed:
            raise ConnectionError("client is closed")
        return await self._send_raw(op, **fields)

    # -- the locking surface ---------------------------------------------------

    async def begin(self, tid: Optional[int] = None) -> int:
        """Register a transaction with this session; with ``tid=None``
        the server assigns a fresh id."""
        fields = {} if tid is None else {"tid": tid}
        response = await self._call("begin", **fields)
        return int(response["tid"])

    async def acquire(
        self,
        tid: int,
        rid: str,
        mode: "LockMode | str",
        timeout: Optional[float] = None,
        wait: bool = True,
    ) -> bool:
        """Acquire (or convert to) ``mode`` on ``rid`` for ``tid``.

        True on grant.  False on timeout or — with ``wait=False`` — on
        an immediate block; either way the request stays queued and a
        retried call resumes the same wait.  Raises
        :class:`TransactionAborted` when a detection pass chose ``tid``
        as victim.
        """
        mode_name = mode.name if isinstance(mode, LockMode) else str(mode)
        fields: Dict[str, Any] = {
            "tid": tid,
            "rid": rid,
            "mode": mode_name,
            "wait": wait,
            "trace": self.trace_of(tid),
        }
        if timeout is not None:
            fields["timeout"] = timeout
        response = await self._call("lock", **fields)
        status = response["status"]
        if status == "granted":
            return True
        if status in ("blocked", "timeout"):
            return False
        if status == "aborted":
            raise TransactionAborted(tid)
        raise ServiceError(
            "bad-status", "unexpected lock status {!r}".format(status)
        )

    lock = acquire

    async def commit(self, tid: int) -> None:
        await self._call("commit", tid=tid)
        self._traces.pop(tid, None)

    async def abort(self, tid: int) -> None:
        await self._call("abort", tid=tid)
        self._traces.pop(tid, None)

    # -- pipelined batches -------------------------------------------------

    async def batch(self, ops: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Submit pipelined sub-ops in one ``batch`` frame.

        ``ops`` is a list of sub-op dicts (``begin``/``lock``/``commit``/
        ``abort``, see :mod:`repro.service.protocol`).  Returns the
        per-op result list; a failed sub-op reports its error in place
        (``{"ok": false, "error": ...}``) without failing the frame.
        ``lock`` sub-ops never wait — a contended request answers
        ``"blocked"`` and stays queued.
        """
        ops = [dict(op) for op in ops]
        for op in ops:
            if op.get("op") == "lock" and "trace" not in op:
                try:
                    op["trace"] = self.trace_of(int(op["tid"]))
                except (KeyError, ValueError, TypeError):
                    pass  # the server reports the malformed sub-op
        response = await self._call("batch", ops=ops)
        return list(response["results"])

    def pipeline(self) -> "LockPipeline":
        """A builder that collects sub-ops and submits them as one
        ``batch`` frame: ``p = client.pipeline(); p.lock(...);
        await p.submit()``."""
        return LockPipeline(self)

    async def acquire_many(
        self,
        tid: int,
        accesses: Iterable[Tuple[str, "LockMode | str"]],
        timeout: Optional[float] = None,
    ) -> bool:
        """Acquire every ``(rid, mode)`` for ``tid``, pipelining the
        whole lock set into one frame.

        Locks that grant immediately cost one round-trip for the entire
        set; each blocked one falls back to an individual waiting
        ``acquire`` (same queue position — batch locks stay queued).
        Returns True when every lock ended up granted, False when any
        wait timed out.  Raises :class:`TransactionAborted` if a
        detection pass chose ``tid`` as victim.
        """
        accesses = list(accesses)
        if not accesses:
            return True
        ops = [
            {
                "op": "lock",
                "tid": tid,
                "rid": rid,
                "mode": mode.name if isinstance(mode, LockMode) else str(mode),
            }
            for rid, mode in accesses
        ]
        all_granted = True
        for (rid, mode), result in zip(accesses, await self.batch(ops)):
            if not result.get("ok"):
                detail = result.get("error") or {}
                raise ServiceError(
                    str(detail.get("code", "error")),
                    str(detail.get("message", "batched lock failed")),
                )
            status = result.get("status")
            if status == "granted":
                continue
            if status == "aborted":
                raise TransactionAborted(tid)
            if status == "blocked":
                if not await self.acquire(tid, rid, mode, timeout=timeout):
                    all_granted = False
                continue
            raise ServiceError(
                "bad-status", "unexpected lock status {!r}".format(status)
            )
        return all_granted

    # -- detection and introspection ----------------------------------------------

    async def detect(self) -> RemoteDetectionResult:
        """Ask the server for one periodic detection-resolution pass."""
        return RemoteDetectionResult(await self._call("detect"))

    async def snapshot(self) -> Dict[str, Any]:
        """The server's RST slice for a cluster coordinator: the
        versioned table dump plus each live resource's cluster-wide
        first-lock sequence number (see :mod:`repro.cluster`)."""
        return dict((await self._call("snapshot"))["snapshot"])

    async def resolve(self, plan: Dict[str, Any]) -> Dict[str, Any]:
        """Apply a coordinator resolution plan on the server (the
        ``resolve`` op: repositions / victims / releases / sweeps, each
        re-checked against live state).  Returns the per-item reply."""
        return dict((await self._call("resolve", plan=plan))["reply"])

    async def heartbeat(self) -> float:
        """Explicit lease renewal; returns the remaining lease time."""
        return float((await self._call("heartbeat"))["remaining"])

    async def inspect(self) -> Dict[str, Any]:
        return await self._call("inspect")

    async def graph(self, dot: bool = False) -> Dict[str, Any]:
        return await self._call("graph", dot=dot)

    async def stats(self) -> Dict[str, Any]:
        return dict((await self._call("stats"))["stats"])

    async def metrics(self) -> Dict[str, Any]:
        """The server's metrics registry: JSON snapshot, Prometheus
        text exposition and the telemetry enabled flag."""
        return await self._call("metrics")

    async def spans(
        self, limit: int = 0, annotations: bool = False
    ) -> Dict[str, Any]:
        """The server's request-lifecycle span log (``limit=0`` means
        all retained spans; ``annotations=True`` also lists the
        born-finished pass/resolution annotation spans)."""
        return await self._call(
            "spans", limit=limit, annotations=annotations
        )

    async def dump(self) -> Dict[str, Any]:
        return await self._call("dump")

    async def log(self, limit: int = 100) -> Dict[str, Any]:
        return await self._call("log", limit=limit)

    async def holding(self, tid: int) -> Dict[str, LockMode]:
        response = await self._call("holding", tid=tid)
        return {
            rid: parse_mode(name)
            for rid, name in response["holding"].items()
        }

    async def deadlocked(self) -> bool:
        return bool((await self._call("deadlocked"))["deadlocked"])


class LockPipeline:
    """Collects sub-ops for one ``batch`` frame.

    Each builder method appends a sub-op and returns ``self`` so calls
    chain; :meth:`submit` sends everything in one frame, returns the
    per-op results and clears the builder for reuse.
    """

    def __init__(self, client: AsyncLockClient) -> None:
        self._client = client
        self._ops: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._ops)

    def begin(self, tid: Optional[int] = None) -> "LockPipeline":
        op: Dict[str, Any] = {"op": "begin"}
        if tid is not None:
            op["tid"] = tid
        self._ops.append(op)
        return self

    def lock(
        self, tid: int, rid: str, mode: "LockMode | str"
    ) -> "LockPipeline":
        self._ops.append({
            "op": "lock",
            "tid": tid,
            "rid": rid,
            "mode": mode.name if isinstance(mode, LockMode) else str(mode),
        })
        return self

    def commit(self, tid: int) -> "LockPipeline":
        self._ops.append({"op": "commit", "tid": tid})
        return self

    def abort(self, tid: int) -> "LockPipeline":
        self._ops.append({"op": "abort", "tid": tid})
        return self

    async def submit(self) -> List[Dict[str, Any]]:
        """Send the collected sub-ops as one frame; empty builder is a
        no-op returning ``[]``.  Clears the builder either way."""
        ops, self._ops = self._ops, []
        if not ops:
            return []
        return await self._client.batch(ops)


#: Slack added to the caller's lock timeout before the cross-thread wait
#: on the network future gives up — the server enforces the real timeout.
_NETWORK_SLACK = 30.0


class RemoteLockManager:
    """Blocking, thread-safe client mirroring ``ConcurrentLockManager``.

    ``acquire`` blocks the calling thread until the server grants the
    lock, the wait times out, or a detection pass on the server aborts
    the transaction (raising :class:`TransactionAborted`) — exactly the
    embedded facade's contract, so the simulator, the examples and
    application code can swap managers by swapping a factory.
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        lease: float = 5.0,
        connect_timeout: float = 10.0,
        wire: "int | str | None" = None,
        unix: Optional[str] = None,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-remote-lockmgr",
            daemon=True,
        )
        self._thread.start()
        self._closed = False
        try:
            self._client: AsyncLockClient = self._run(
                AsyncLockClient.connect(
                    host,
                    port,
                    lease=lease,
                    wire=wire,
                    unix=unix,
                    max_frame=max_frame,
                ),
                timeout=connect_timeout,
            )
        except BaseException:
            self._stop_loop()
            raise

    @property
    def wire(self) -> int:
        """The negotiated wire version (1 = JSON, 2 = binary)."""
        return self._client.wire

    def _run(self, coro, timeout: Optional[float] = None):
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout
        )

    # -- locking -----------------------------------------------------------

    def begin(self, tid: Optional[int] = None) -> int:
        return self._run(self._client.begin(tid))

    def acquire(
        self,
        tid: int,
        rid: str,
        mode: LockMode,
        timeout: Optional[float] = None,
    ) -> bool:
        outer = None if timeout is None else timeout + _NETWORK_SLACK
        return self._run(
            self._client.acquire(tid, rid, mode, timeout=timeout), outer
        )

    def commit(self, tid: int) -> None:
        self._run(self._client.commit(tid))

    def abort(self, tid: int) -> None:
        self._run(self._client.abort(tid))

    def batch(self, ops: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Submit one pipelined ``batch`` frame (see
        :meth:`AsyncLockClient.batch`)."""
        return self._run(self._client.batch(ops))

    def acquire_many(
        self,
        tid: int,
        accesses: Iterable[Tuple[str, LockMode]],
        timeout: Optional[float] = None,
    ) -> bool:
        """Acquire a whole lock set in one frame, falling back to
        waiting ``acquire`` calls for the contended ones."""
        accesses = list(accesses)
        outer = None
        if timeout is not None:
            outer = timeout * max(len(accesses), 1) + _NETWORK_SLACK
        return self._run(
            self._client.acquire_many(tid, accesses, timeout=timeout),
            outer,
        )

    # -- detection ------------------------------------------------------------

    def detect(self) -> RemoteDetectionResult:
        return self._run(self._client.detect())

    # -- introspection ----------------------------------------------------------

    def holding(self, tid: int) -> Dict[str, LockMode]:
        return self._run(self._client.holding(tid))

    def deadlocked(self) -> bool:
        return self._run(self._client.deadlocked())

    def snapshot(self) -> list:
        """The server's lock table rendered in paper notation."""
        return self._run(self._client.dump())["text"].splitlines()

    def dump(self) -> Dict[str, Any]:
        """The server's full versioned lock-table snapshot."""
        return self._run(self._client.dump())

    def stats(self) -> Dict[str, Any]:
        return self._run(self._client.stats())

    def metrics(self) -> Dict[str, Any]:
        return self._run(self._client.metrics())

    def spans(self, limit: int = 0) -> Dict[str, Any]:
        return self._run(self._client.spans(limit=limit))

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Detach cleanly and stop the client thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._run(self._client.close(), timeout=5.0)
        except Exception:
            pass
        self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._thread.is_alive():
            self._loop.close()

    def __enter__(self) -> "RemoteLockManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
