"""Negotiated binary wire framing (wire version 2).

PR 5 made the lock core fast enough that the length-prefixed JSON
protocol became the tax; this module is the cure.  A v2 frame is a
fixed 14-byte struct-packed header followed by a payload encoded by a
hand-rolled, dependency-free codec::

    offset  size  field
    0       2     magic  b"RW"
    2       1     wire version (2)
    3       1     flags
    4       1     opcode
    5       1     reserved (0)
    6       4     request id (big-endian u32; see FLAG_ID_NULL)
    10      4     payload length (big-endian u32)

Flags: ``FLAG_JSON`` (payload is the UTF-8 JSON of the whole message —
the escape hatch for cold/admin ops), ``FLAG_RESPONSE`` (payload is a
response body for ``opcode``), ``FLAG_WHOLE`` (payload is the whole
message as one structural value — the fallback when a message does not
fit its op's fast shape), ``FLAG_ID_NULL`` (the message's ``id`` is
JSON ``null``; the header id field is meaningless).

Hot ops (``lock``, ``batch``, ``heartbeat``, ``commit``, ``abort``,
``snapshot``, ``resolve``, ``begin``) get specialized field-level
codecs: no key strings on the wire, mode/status names as one-byte
table indexes, optional fields behind a presence mask.  Everything
else — and any message whose shape the fast packers do not recognise —
travels as a structural value (a msgpack-like tagged encoding of the
JSON data model: None/bool/int/float/str/list/dict) or as JSON behind
``FLAG_JSON``.  Decoding always rebuilds the exact v1 message dict, so
``decode(encode(m)) == m`` holds for every JSON-safe message: the
binary format is a *transport* encoding of the same message vocabulary,
which is what the hypothesis equivalence suite pins down.

Negotiation
-----------

The handshake is always JSON: a client that wants v2 adds ``"wire": 2``
to its ``hello`` (or ``resume``) frame.  A v2-capable server grants the
highest version both sides speak and stamps it into the reply as a
top-level ``"wire"`` field; both sides switch codecs for every frame
*after* the handshake exchange.  Servers ignore a missing/absurd
``wire`` field (the connection simply stays on JSON v1), so existing
``{"v": 1}`` clients keep working bit-for-bit, and a v2 client talking
to an old server falls back to JSON the same way.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..core.modes import LockMode
from .protocol import (
    FrameTooLarge,
    MAX_FRAME,
    ProtocolError,
    _HEADER as _JSON_HEADER,
    decode_payload,
    encode_frame,
    read_frame,
    read_frame_sized,
)

#: The two wire versions this build speaks.
WIRE_JSON = 1
WIRE_BINARY = 2
SUPPORTED_WIRES = (WIRE_JSON, WIRE_BINARY)

MAGIC = b"RW"

_HEADER = struct.Struct(">2sBBBBII")
HEADER_SIZE = _HEADER.size  # 14

FLAG_JSON = 0x01
FLAG_RESPONSE = 0x02
FLAG_WHOLE = 0x04
FLAG_ID_NULL = 0x08

OP_OBJ = 0
OP_LOCK = 1
OP_BATCH = 2
OP_HEARTBEAT = 3
OP_COMMIT = 4
OP_ABORT = 5
OP_SNAPSHOT = 6
OP_RESOLVE = 7
OP_BEGIN = 8
OP_ERROR = 9

_OPCODES = {
    "lock": OP_LOCK,
    "batch": OP_BATCH,
    "heartbeat": OP_HEARTBEAT,
    "commit": OP_COMMIT,
    "abort": OP_ABORT,
    "snapshot": OP_SNAPSHOT,
    "resolve": OP_RESOLVE,
    "begin": OP_BEGIN,
}
_OP_NAMES = {code: name for name, code in _OPCODES.items()}

#: One-byte tables for the names that dominate hot frames.  Index 0xFF
#: means "inline string follows" so pluggable mode systems and future
#: statuses stay representable.
_MODE_NAMES = tuple(mode.name for mode in LockMode)
_MODE_INDEX = {name: i for i, name in enumerate(_MODE_NAMES)}
_STATUS_NAMES = ("granted", "blocked", "timeout", "aborted", "parked")
_STATUS_INDEX = {name: i for i, name in enumerate(_STATUS_NAMES)}
_ESCAPE = 0xFF


class _Mismatch(Exception):
    """A message does not fit its op's fast shape (fall back)."""


# -- structural value codec ------------------------------------------------
#
# A tagged big-endian encoding of the JSON data model.  Tags follow the
# msgpack layout where convenient (fixint/fixstr/fixarray/fixmap) —
# hand-rolled, no dependency.

_F64 = struct.Struct(">d")
_I16 = struct.Struct(">h")
_I32 = struct.Struct(">i")
_I64 = struct.Struct(">q")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")


def _encode_value(out: bytearray, value: Any) -> None:
    kind = type(value)
    if kind is str:
        data = value.encode("utf-8")
        n = len(data)
        if n < 32:
            out.append(0xA0 | n)
        elif n < 256:
            out.append(0xD9)
            out.append(n)
        elif n < 65536:
            out.append(0xDA)
            out += _U16.pack(n)
        else:
            out.append(0xDB)
            out += _U32.pack(n)
        out += data
    elif kind is bool:
        out.append(0xC3 if value else 0xC2)
    elif kind is int:
        if -32 <= value < 128:
            out.append(value & 0xFF)
        elif -32768 <= value < 32768:
            out.append(0xD1)
            out += _I16.pack(value)
        elif -2147483648 <= value < 2147483648:
            out.append(0xD2)
            out += _I32.pack(value)
        elif -(1 << 63) <= value < (1 << 63):
            out.append(0xD3)
            out += _I64.pack(value)
        else:  # arbitrary precision: decimal string
            data = str(value).encode("ascii")
            out.append(0xC7)
            out += _U32.pack(len(data))
            out += data
    elif kind is float:
        out.append(0xCB)
        out += _F64.pack(value)
    elif value is None:
        out.append(0xC0)
    elif kind is list or kind is tuple:
        n = len(value)
        if n < 16:
            out.append(0x90 | n)
        elif n < 65536:
            out.append(0xDC)
            out += _U16.pack(n)
        else:
            out.append(0xDD)
            out += _U32.pack(n)
        for item in value:
            _encode_value(out, item)
    elif kind is dict:
        n = len(value)
        if n < 16:
            out.append(0x80 | n)
        elif n < 65536:
            out.append(0xDE)
            out += _U16.pack(n)
        else:
            out.append(0xDF)
            out += _U32.pack(n)
        for key, item in value.items():
            if type(key) is not str:
                raise ProtocolError(
                    "binary frames need string keys, got {!r}".format(key)
                )
            _encode_value(out, key)
            _encode_value(out, item)
    else:
        raise ProtocolError(
            "value of type {} is not wire-encodable".format(kind.__name__)
        )


def _decode_value(buf, pos: int) -> Tuple[Any, int]:
    try:
        tag = buf[pos]
    except IndexError:
        raise ProtocolError("binary payload truncated") from None
    pos += 1
    if tag < 0x80:  # positive fixint
        return tag, pos
    if tag >= 0xE0:  # negative fixint
        return tag - 256, pos
    if 0xA0 <= tag < 0xC0:  # fixstr
        n = tag & 0x1F
        return _take_str(buf, pos, n)
    if 0x80 <= tag < 0x90:  # fixmap
        return _take_map(buf, pos, tag & 0x0F)
    if 0x90 <= tag < 0xA0:  # fixarray
        return _take_list(buf, pos, tag & 0x0F)
    try:
        if tag == 0xC0:
            return None, pos
        if tag == 0xC2:
            return False, pos
        if tag == 0xC3:
            return True, pos
        if tag == 0xCB:
            return _F64.unpack_from(buf, pos)[0], pos + 8
        if tag == 0xD1:
            return _I16.unpack_from(buf, pos)[0], pos + 2
        if tag == 0xD2:
            return _I32.unpack_from(buf, pos)[0], pos + 4
        if tag == 0xD3:
            return _I64.unpack_from(buf, pos)[0], pos + 8
        if tag == 0xC7:  # big int
            n = _U32.unpack_from(buf, pos)[0]
            pos += 4
            end = pos + n
            if end > len(buf):
                raise ProtocolError("binary payload truncated")
            return int(bytes(buf[pos:end])), end
        if tag == 0xD9:
            return _take_str(buf, pos + 1, buf[pos])
        if tag == 0xDA:
            return _take_str(buf, pos + 2, _U16.unpack_from(buf, pos)[0])
        if tag == 0xDB:
            return _take_str(buf, pos + 4, _U32.unpack_from(buf, pos)[0])
        if tag == 0xDC:
            return _take_list(buf, pos + 2, _U16.unpack_from(buf, pos)[0])
        if tag == 0xDD:
            return _take_list(buf, pos + 4, _U32.unpack_from(buf, pos)[0])
        if tag == 0xDE:
            return _take_map(buf, pos + 2, _U16.unpack_from(buf, pos)[0])
        if tag == 0xDF:
            return _take_map(buf, pos + 4, _U32.unpack_from(buf, pos)[0])
    except struct.error:
        raise ProtocolError("binary payload truncated") from None
    raise ProtocolError("unknown value tag 0x{:02x}".format(tag))


def _take_str(buf, pos: int, n: int) -> Tuple[str, int]:
    end = pos + n
    if end > len(buf):
        raise ProtocolError("binary payload truncated")
    try:
        return str(buf[pos:end], "utf-8"), end
    except UnicodeDecodeError as exc:
        raise ProtocolError("undecodable string: {}".format(exc)) from exc


def _take_list(buf, pos: int, n: int) -> Tuple[List[Any], int]:
    items = []
    append = items.append
    for _ in range(n):
        value, pos = _decode_value(buf, pos)
        append(value)
    return items, pos


def _take_map(buf, pos: int, n: int) -> Tuple[Dict[str, Any], int]:
    result: Dict[str, Any] = {}
    for _ in range(n):
        key, pos = _decode_value(buf, pos)
        if type(key) is not str:
            raise ProtocolError("map keys must be strings")
        value, pos = _decode_value(buf, pos)
        result[key] = value
    return result, pos


# -- small field helpers ---------------------------------------------------


def _encode_name(out: bytearray, name: str, index: Dict[str, int]) -> None:
    code = index.get(name)
    if code is None:
        if type(name) is not str:
            raise _Mismatch()
        out.append(_ESCAPE)
        _encode_value(out, name)
    else:
        out.append(code)


def _decode_name(buf, pos: int, names: Tuple[str, ...]) -> Tuple[str, int]:
    code = buf[pos]
    pos += 1
    if code == _ESCAPE:
        name, pos = _decode_value(buf, pos)
        if type(name) is not str:
            raise ProtocolError("name escape must carry a string")
        return name, pos
    if code >= len(names):
        raise ProtocolError("unknown name index {}".format(code))
    return names[code], pos


def _need_int(value: Any) -> int:
    if type(value) is not int:
        raise _Mismatch()
    return value


def _need_str(value: Any) -> str:
    if type(value) is not str:
        raise _Mismatch()
    return value


# -- event payloads --------------------------------------------------------
#
# Lock-manager events ride inside lock/commit/batch responses.  Event
# kind byte: 0 = None, 1..4 = the four event dict shapes, 0xFE =
# structural fallback for anything else.

_EV_NONE = 0
_EV_GRANTED = 1
_EV_BLOCKED = 2
_EV_ABORTED = 3
_EV_REPOSITIONED = 4
_EV_OTHER = 0xFE


def _encode_event(out: bytearray, event: Any) -> None:
    if event is None:
        out.append(_EV_NONE)
        return
    mark = len(out)
    try:
        if type(event) is not dict:
            raise _Mismatch()
        kind = event.get("type")
        if kind == "granted" and len(event) == 5:
            out.append(_EV_GRANTED)
            _encode_value(out, _need_int(event["tid"]))
            _encode_value(out, _need_str(event["rid"]))
            _encode_name(out, _need_str(event["mode"]), _MODE_INDEX)
            immediate = event["immediate"]
            if type(immediate) is not bool:
                raise _Mismatch()
            out.append(1 if immediate else 0)
        elif kind == "blocked" and len(event) == 5:
            out.append(_EV_BLOCKED)
            _encode_value(out, _need_int(event["tid"]))
            _encode_value(out, _need_str(event["rid"]))
            _encode_name(out, _need_str(event["mode"]), _MODE_INDEX)
            conversion = event["conversion"]
            if type(conversion) is not bool:
                raise _Mismatch()
            out.append(1 if conversion else 0)
        elif kind == "aborted" and len(event) == 3:
            out.append(_EV_ABORTED)
            _encode_value(out, _need_int(event["tid"]))
            _encode_value(out, _need_str(event["reason"]))
        elif kind == "repositioned" and len(event) == 3:
            delayed = event["delayed"]
            if type(delayed) is not list:
                raise _Mismatch()
            out.append(_EV_REPOSITIONED)
            _encode_value(out, _need_str(event["rid"]))
            _encode_value(out, delayed)
        else:
            raise _Mismatch()
    except (KeyError, _Mismatch):
        del out[mark:]
        out.append(_EV_OTHER)
        _encode_value(out, event)


def _decode_event(buf, pos: int) -> Tuple[Any, int]:
    kind = buf[pos]
    pos += 1
    if kind == _EV_NONE:
        return None, pos
    if kind == _EV_OTHER:
        return _decode_value(buf, pos)
    if kind == _EV_GRANTED or kind == _EV_BLOCKED:
        tid, pos = _decode_value(buf, pos)
        rid, pos = _decode_value(buf, pos)
        mode, pos = _decode_name(buf, pos, _MODE_NAMES)
        flag = buf[pos] != 0
        pos += 1
        if kind == _EV_GRANTED:
            return {
                "type": "granted",
                "tid": tid,
                "rid": rid,
                "mode": mode,
                "immediate": flag,
            }, pos
        return {
            "type": "blocked",
            "tid": tid,
            "rid": rid,
            "mode": mode,
            "conversion": flag,
        }, pos
    if kind == _EV_ABORTED:
        tid, pos = _decode_value(buf, pos)
        reason, pos = _decode_value(buf, pos)
        return {"type": "aborted", "tid": tid, "reason": reason}, pos
    if kind == _EV_REPOSITIONED:
        rid, pos = _decode_value(buf, pos)
        delayed, pos = _decode_value(buf, pos)
        return {"type": "repositioned", "rid": rid, "delayed": delayed}, pos
    raise ProtocolError("unknown event kind {}".format(kind))


# -- request payload codecs ------------------------------------------------
#
# Each _req_* packer raises _Mismatch when the message has extra,
# missing or oddly-typed fields; encode_message then falls back to the
# whole-message structural form, keeping round-trip identity for every
# input.  The strictness trick: count the optional fields present and
# require len(message) to match exactly, so unknown keys cannot be
# silently dropped.

_P_WAIT = 0x01
_P_TIMEOUT = 0x02
_P_TRACE = 0x04
_P_SPAN = 0x08
_P_TID = 0x01


def _req_lock(out: bytearray, message: Dict[str, Any]) -> None:
    expected = 6
    presence = 0
    wait = message.get("wait")
    if "wait" in message:
        if type(wait) is not bool:
            raise _Mismatch()
        presence |= _P_WAIT
        expected += 1
    if "timeout" in message:
        presence |= _P_TIMEOUT
        expected += 1
    trace = message.get("trace")
    if "trace" in message:
        if type(trace) is not str:
            raise _Mismatch()
        presence |= _P_TRACE
        expected += 1
    span = message.get("span")
    if "span" in message:
        if type(span) is not str:
            raise _Mismatch()
        presence |= _P_SPAN
        expected += 1
    if len(message) != expected:
        raise _Mismatch()
    out.append(presence)
    _encode_value(out, _need_int(message["tid"]))
    _encode_value(out, _need_str(message["rid"]))
    _encode_name(out, _need_str(message["mode"]), _MODE_INDEX)
    if presence & _P_WAIT:
        out.append(1 if wait else 0)
    if presence & _P_TIMEOUT:
        _encode_value(out, message["timeout"])
    if presence & _P_TRACE:
        _encode_value(out, trace)
    if presence & _P_SPAN:
        _encode_value(out, span)


def _dec_lock(buf, pos: int, message: Dict[str, Any]) -> int:
    presence = buf[pos]
    pos += 1
    message["tid"], pos = _decode_value(buf, pos)
    message["rid"], pos = _decode_value(buf, pos)
    message["mode"], pos = _decode_name(buf, pos, _MODE_NAMES)
    if presence & _P_WAIT:
        message["wait"] = buf[pos] != 0
        pos += 1
    if presence & _P_TIMEOUT:
        message["timeout"], pos = _decode_value(buf, pos)
    if presence & _P_TRACE:
        message["trace"], pos = _decode_value(buf, pos)
    if presence & _P_SPAN:
        message["span"], pos = _decode_value(buf, pos)
    return pos


def _req_tid_only(out: bytearray, message: Dict[str, Any]) -> None:
    if len(message) != 4:
        raise _Mismatch()
    _encode_value(out, _need_int(message["tid"]))


def _dec_tid_only(buf, pos: int, message: Dict[str, Any]) -> int:
    message["tid"], pos = _decode_value(buf, pos)
    return pos


def _req_bare(out: bytearray, message: Dict[str, Any]) -> None:
    if len(message) != 3:
        raise _Mismatch()


def _dec_bare(buf, pos: int, message: Dict[str, Any]) -> int:
    return pos


def _req_begin(out: bytearray, message: Dict[str, Any]) -> None:
    if "tid" in message:
        if len(message) != 4:
            raise _Mismatch()
        out.append(_P_TID)
        _encode_value(out, _need_int(message["tid"]))
    else:
        if len(message) != 3:
            raise _Mismatch()
        out.append(0)


def _dec_begin(buf, pos: int, message: Dict[str, Any]) -> int:
    presence = buf[pos]
    pos += 1
    if presence & _P_TID:
        message["tid"], pos = _decode_value(buf, pos)
    return pos


def _req_resolve(out: bytearray, message: Dict[str, Any]) -> None:
    if len(message) != 4:
        raise _Mismatch()
    _encode_value(out, message["plan"])


def _dec_resolve(buf, pos: int, message: Dict[str, Any]) -> int:
    message["plan"], pos = _decode_value(buf, pos)
    return pos


_SUB_BEGIN = 1
_SUB_LOCK = 2
_SUB_COMMIT = 3
_SUB_ABORT = 4
_SUB_OTHER = 0xFE


def _req_batch(out: bytearray, message: Dict[str, Any]) -> None:
    if len(message) != 4:
        raise _Mismatch()
    ops = message["ops"]
    if type(ops) is not list:
        raise _Mismatch()
    _encode_value(out, len(ops))
    for sub in ops:
        mark = len(out)
        try:
            if type(sub) is not dict:
                raise _Mismatch()
            name = sub.get("op")
            if name == "lock":
                expected = 4
                presence = 0
                trace = sub.get("trace")
                if "trace" in sub:
                    if type(trace) is not str:
                        raise _Mismatch()
                    presence |= _P_TRACE
                    expected += 1
                span = sub.get("span")
                if "span" in sub:
                    if type(span) is not str:
                        raise _Mismatch()
                    presence |= _P_SPAN
                    expected += 1
                if len(sub) != expected:
                    raise _Mismatch()
                out.append(_SUB_LOCK)
                out.append(presence)
                _encode_value(out, _need_int(sub["tid"]))
                _encode_value(out, _need_str(sub["rid"]))
                _encode_name(out, _need_str(sub["mode"]), _MODE_INDEX)
                if presence & _P_TRACE:
                    _encode_value(out, trace)
                if presence & _P_SPAN:
                    _encode_value(out, span)
            elif name == "begin":
                if "tid" in sub:
                    if len(sub) != 2:
                        raise _Mismatch()
                    out.append(_SUB_BEGIN)
                    out.append(_P_TID)
                    _encode_value(out, _need_int(sub["tid"]))
                else:
                    if len(sub) != 1:
                        raise _Mismatch()
                    out.append(_SUB_BEGIN)
                    out.append(0)
            elif name == "commit" or name == "abort":
                if len(sub) != 2:
                    raise _Mismatch()
                out.append(_SUB_COMMIT if name == "commit" else _SUB_ABORT)
                _encode_value(out, _need_int(sub["tid"]))
            else:
                raise _Mismatch()
        except (KeyError, _Mismatch):
            del out[mark:]
            out.append(_SUB_OTHER)
            _encode_value(out, sub)


def _dec_batch(buf, pos: int, message: Dict[str, Any]) -> int:
    count, pos = _decode_value(buf, pos)
    if type(count) is not int or count < 0:
        raise ProtocolError("bad batch count")
    ops: List[Any] = []
    append = ops.append
    for _ in range(count):
        kind = buf[pos]
        pos += 1
        if kind == _SUB_LOCK:
            presence = buf[pos]
            pos += 1
            sub: Dict[str, Any] = {"op": "lock"}
            sub["tid"], pos = _decode_value(buf, pos)
            sub["rid"], pos = _decode_value(buf, pos)
            sub["mode"], pos = _decode_name(buf, pos, _MODE_NAMES)
            if presence & _P_TRACE:
                sub["trace"], pos = _decode_value(buf, pos)
            if presence & _P_SPAN:
                sub["span"], pos = _decode_value(buf, pos)
        elif kind == _SUB_BEGIN:
            presence = buf[pos]
            pos += 1
            sub = {"op": "begin"}
            if presence & _P_TID:
                sub["tid"], pos = _decode_value(buf, pos)
        elif kind == _SUB_COMMIT or kind == _SUB_ABORT:
            sub = {"op": "commit" if kind == _SUB_COMMIT else "abort"}
            sub["tid"], pos = _decode_value(buf, pos)
        elif kind == _SUB_OTHER:
            sub, pos = _decode_value(buf, pos)
        else:
            raise ProtocolError("unknown batch sub-op kind {}".format(kind))
        append(sub)
    message["ops"] = ops
    return pos


_REQ_CODECS = {
    OP_LOCK: (_req_lock, _dec_lock),
    OP_BATCH: (_req_batch, _dec_batch),
    OP_HEARTBEAT: (_req_bare, _dec_bare),
    OP_COMMIT: (_req_tid_only, _dec_tid_only),
    OP_ABORT: (_req_tid_only, _dec_tid_only),
    OP_SNAPSHOT: (_req_bare, _dec_bare),
    OP_RESOLVE: (_req_resolve, _dec_resolve),
    OP_BEGIN: (_req_begin, _dec_begin),
}


# -- response payload codecs -----------------------------------------------
#
# A response dict has no "op"; the sender passes the op it answers
# (``reply_to``) so the matching packer runs and the opcode lands in
# the header for the decoder.  Success shapes are exactly what
# server.py sends (epoch always present after ``send`` stamps it);
# anything else falls back to the whole-message form.


def _ok_epoch(message: Dict[str, Any], nfields: int) -> Any:
    if message.get("ok") is not True or len(message) != nfields:
        raise _Mismatch()
    if "epoch" not in message:
        raise _Mismatch()
    return message["epoch"]


def _resp_lock(out: bytearray, message: Dict[str, Any]) -> None:
    epoch = _ok_epoch(message, 6)
    _encode_name(out, _need_str(message["status"]), _STATUS_INDEX)
    _encode_event(out, message["event"])
    _encode_value(out, epoch)


def _dec_resp_lock(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = True
    message["status"], pos = _decode_name(buf, pos, _STATUS_NAMES)
    message["event"], pos = _decode_event(buf, pos)
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


def _resp_heartbeat(out: bytearray, message: Dict[str, Any]) -> None:
    epoch = _ok_epoch(message, 6)
    _encode_value(out, message["lease"])
    _encode_value(out, message["remaining"])
    _encode_value(out, epoch)


def _dec_resp_heartbeat(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = True
    message["lease"], pos = _decode_value(buf, pos)
    message["remaining"], pos = _decode_value(buf, pos)
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


def _resp_begin(out: bytearray, message: Dict[str, Any]) -> None:
    epoch = _ok_epoch(message, 5)
    _encode_value(out, _need_int(message["tid"]))
    _encode_value(out, epoch)


def _dec_resp_begin(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = True
    message["tid"], pos = _decode_value(buf, pos)
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


def _resp_finish(out: bytearray, message: Dict[str, Any]) -> None:
    epoch = _ok_epoch(message, 6)
    grants = message["grants"]
    if type(grants) is not list:
        raise _Mismatch()
    _encode_value(out, _need_int(message["tid"]))
    _encode_value(out, len(grants))
    for event in grants:
        _encode_event(out, event)
    _encode_value(out, epoch)


def _dec_resp_finish(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = True
    message["tid"], pos = _decode_value(buf, pos)
    count, pos = _decode_value(buf, pos)
    if type(count) is not int or count < 0:
        raise ProtocolError("bad grants count")
    grants = []
    for _ in range(count):
        event, pos = _decode_event(buf, pos)
        grants.append(event)
    message["grants"] = grants
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


_RES_BEGIN = 1
_RES_LOCK = 2
_RES_FINISH_COMMIT = 3
_RES_FINISH_ABORT = 4
_RES_OTHER = 0xFE


def _resp_batch(out: bytearray, message: Dict[str, Any]) -> None:
    epoch = _ok_epoch(message, 5)
    results = message["results"]
    if type(results) is not list:
        raise _Mismatch()
    _encode_value(out, len(results))
    for result in results:
        mark = len(out)
        try:
            if type(result) is not dict or result.get("ok") is not True:
                raise _Mismatch()
            name = result.get("op")
            if name == "lock" and len(result) == 5:
                out.append(_RES_LOCK)
                _encode_value(out, _need_int(result["tid"]))
                _encode_name(
                    out, _need_str(result["status"]), _STATUS_INDEX
                )
                _encode_event(out, result["event"])
            elif name == "begin" and len(result) == 3:
                out.append(_RES_BEGIN)
                _encode_value(out, _need_int(result["tid"]))
            elif (
                (name == "commit" or name == "abort") and len(result) == 4
            ):
                grants = result["grants"]
                if type(grants) is not list:
                    raise _Mismatch()
                out.append(
                    _RES_FINISH_COMMIT
                    if name == "commit"
                    else _RES_FINISH_ABORT
                )
                _encode_value(out, _need_int(result["tid"]))
                _encode_value(out, len(grants))
                for event in grants:
                    _encode_event(out, event)
            else:
                raise _Mismatch()
        except (KeyError, _Mismatch):
            del out[mark:]
            out.append(_RES_OTHER)
            _encode_value(out, result)
    _encode_value(out, epoch)


def _dec_resp_batch(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = True
    count, pos = _decode_value(buf, pos)
    if type(count) is not int or count < 0:
        raise ProtocolError("bad results count")
    results: List[Any] = []
    append = results.append
    for _ in range(count):
        kind = buf[pos]
        pos += 1
        if kind == _RES_LOCK:
            result: Dict[str, Any] = {"op": "lock", "ok": True}
            result["tid"], pos = _decode_value(buf, pos)
            result["status"], pos = _decode_name(buf, pos, _STATUS_NAMES)
            result["event"], pos = _decode_event(buf, pos)
        elif kind == _RES_BEGIN:
            result = {"op": "begin", "ok": True}
            result["tid"], pos = _decode_value(buf, pos)
        elif kind == _RES_FINISH_COMMIT or kind == _RES_FINISH_ABORT:
            result = {
                "op": "commit"
                if kind == _RES_FINISH_COMMIT
                else "abort",
                "ok": True,
            }
            result["tid"], pos = _decode_value(buf, pos)
            n, pos = _decode_value(buf, pos)
            if type(n) is not int or n < 0:
                raise ProtocolError("bad grants count")
            grants = []
            for _ in range(n):
                event, pos = _decode_event(buf, pos)
                grants.append(event)
            result["grants"] = grants
        elif kind == _RES_OTHER:
            result, pos = _decode_value(buf, pos)
        else:
            raise ProtocolError(
                "unknown batch result kind {}".format(kind)
            )
        append(result)
    message["results"] = results
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


def _resp_snapshot(out: bytearray, message: Dict[str, Any]) -> None:
    epoch = _ok_epoch(message, 5)
    _encode_value(out, message["snapshot"])
    _encode_value(out, epoch)


def _dec_resp_snapshot(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = True
    message["snapshot"], pos = _decode_value(buf, pos)
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


def _resp_resolve(out: bytearray, message: Dict[str, Any]) -> None:
    epoch = _ok_epoch(message, 5)
    _encode_value(out, message["reply"])
    _encode_value(out, epoch)


def _dec_resp_resolve(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = True
    message["reply"], pos = _decode_value(buf, pos)
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


def _resp_error(out: bytearray, message: Dict[str, Any]) -> None:
    if message.get("ok") is not False or len(message) != 5:
        raise _Mismatch()
    if "epoch" not in message:
        raise _Mismatch()
    detail = message["error"]
    if type(detail) is not dict or len(detail) != 2:
        raise _Mismatch()
    _encode_value(out, _need_str(detail["code"]))
    _encode_value(out, _need_str(detail["message"]))
    _encode_value(out, message["epoch"])


def _dec_resp_error(buf, pos: int, message: Dict[str, Any]) -> int:
    message["ok"] = False
    code, pos = _decode_value(buf, pos)
    text, pos = _decode_value(buf, pos)
    message["error"] = {"code": code, "message": text}
    message["epoch"], pos = _decode_value(buf, pos)
    return pos


_RESP_CODECS = {
    OP_LOCK: (_resp_lock, _dec_resp_lock),
    OP_HEARTBEAT: (_resp_heartbeat, _dec_resp_heartbeat),
    OP_BEGIN: (_resp_begin, _dec_resp_begin),
    OP_COMMIT: (_resp_finish, _dec_resp_finish),
    OP_ABORT: (_resp_finish, _dec_resp_finish),
    OP_BATCH: (_resp_batch, _dec_resp_batch),
    OP_SNAPSHOT: (_resp_snapshot, _dec_resp_snapshot),
    OP_RESOLVE: (_resp_resolve, _dec_resp_resolve),
    OP_ERROR: (_resp_error, _dec_resp_error),
}


# -- whole-frame encode/decode ---------------------------------------------


def _header_id(message: Dict[str, Any]) -> Tuple[int, int]:
    """(header id, flags) for the message's ``id``; _Mismatch when the
    id cannot ride in the header."""
    request_id = message.get("id")
    if request_id is None:
        if "id" not in message:
            raise _Mismatch()
        return 0, FLAG_ID_NULL
    if type(request_id) is int and 0 <= request_id <= 0xFFFFFFFF:
        return request_id, 0
    raise _Mismatch()


def encode_binary(
    message: Dict[str, Any],
    reply_to: Optional[str] = None,
    max_frame: int = MAX_FRAME,
) -> bytes:
    """One message as a v2 binary frame.

    ``reply_to`` names the op a response answers (responses carry no
    ``op`` field), selecting its specialized codec; requests find their
    own codec from ``message["op"]``.  Messages that fit no fast shape
    fall back to the whole-message structural form — identity is never
    sacrificed for speed.
    """
    out = bytearray(HEADER_SIZE)
    opcode = OP_OBJ
    flags = 0
    try:
        version = message.get("v", WIRE_JSON)
        if version != WIRE_JSON or type(version) is not int or "v" not in message:
            raise _Mismatch()
        header_id, flags = _header_id(message)
        op = message.get("op")
        if op is not None:
            opcode = _OPCODES.get(op)
            if opcode is None:
                raise _Mismatch()
            _REQ_CODECS[opcode][0](out, message)
        elif "ok" in message:
            flags |= FLAG_RESPONSE
            if message.get("ok") is False:
                opcode = OP_ERROR
            else:
                opcode = _OPCODES.get(reply_to or "")
                if opcode is None:
                    raise _Mismatch()
            _RESP_CODECS[opcode][0](out, message)
        else:
            raise _Mismatch()
    except (KeyError, _Mismatch):
        del out[HEADER_SIZE:]
        opcode = OP_OBJ
        flags = FLAG_WHOLE
        header_id = 0
        try:
            _encode_value(out, message)
        except RecursionError:
            raise ProtocolError("frame nests too deeply") from None
    if len(out) - HEADER_SIZE > max_frame:
        raise FrameTooLarge(
            "frame of {} bytes exceeds the {} byte limit".format(
                len(out) - HEADER_SIZE, max_frame
            )
        )
    _HEADER.pack_into(
        out,
        0,
        MAGIC,
        WIRE_BINARY,
        flags,
        opcode,
        0,
        header_id,
        len(out) - HEADER_SIZE,
    )
    return bytes(out)


def decode_binary_payload(
    flags: int, opcode: int, header_id: int, payload: bytes
) -> Dict[str, Any]:
    """Rebuild the v1 message dict from one v2 frame's parts."""
    if flags & FLAG_JSON:
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                "undecodable frame: {}".format(exc)
            ) from exc
        if not isinstance(message, dict):
            raise ProtocolError("frame must decode to an object")
        return message
    if flags & FLAG_WHOLE:
        message, pos = _decode_value(payload, 0)
        if pos != len(payload):
            raise ProtocolError(
                "{} trailing bytes after frame".format(len(payload) - pos)
            )
        if not isinstance(message, dict):
            raise ProtocolError("frame must decode to an object")
        return message
    message: Dict[str, Any] = {
        "v": WIRE_JSON,
        "id": None if flags & FLAG_ID_NULL else header_id,
    }
    if flags & FLAG_RESPONSE:
        table = _RESP_CODECS
    else:
        name = _OP_NAMES.get(opcode)
        if name is None:
            raise ProtocolError("unknown opcode {}".format(opcode))
        message["op"] = name
        table = _REQ_CODECS
    pair = table.get(opcode)
    if pair is None:
        raise ProtocolError("unknown opcode {}".format(opcode))
    try:
        pos = pair[1](payload, 0, message)
    except IndexError:
        raise ProtocolError("binary payload truncated") from None
    if pos != len(payload):
        raise ProtocolError(
            "{} trailing bytes after frame".format(len(payload) - pos)
        )
    return message


def encode_binary_json(
    message: Dict[str, Any], max_frame: int = MAX_FRAME
) -> bytes:
    """The escape hatch: a v2 frame whose payload is whole-message
    JSON — what cold/admin ops use so they need no bespoke codec."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(
            "frame of {} bytes exceeds the {} byte limit".format(
                len(payload), max_frame
            )
        )
    try:
        header_id, flags = _header_id(message)
    except _Mismatch:
        header_id, flags = 0, 0
    return (
        _HEADER.pack(
            MAGIC,
            WIRE_BINARY,
            flags | FLAG_JSON,
            OP_OBJ,
            0,
            header_id,
            len(payload),
        )
        + payload
    )


async def _read_binary_raw(
    reader: asyncio.StreamReader, max_frame: int
) -> Optional[Tuple[int, int, int, bytes, int]]:
    """One raw v2 frame: ``(flags, opcode, header id, payload, wire
    size)``, or None on clean EOF between frames."""
    header = await reader.read(HEADER_SIZE)
    if not header:
        return None
    while len(header) < HEADER_SIZE:
        more = await reader.read(HEADER_SIZE - len(header))
        if not more:
            raise ProtocolError("connection closed inside a frame header")
        header += more
    magic, version, flags, opcode, _, header_id, length = _HEADER.unpack(
        header
    )
    if magic != MAGIC:
        raise ProtocolError(
            "bad frame magic {!r} (expected {!r})".format(magic, MAGIC)
        )
    if version != WIRE_BINARY:
        raise ProtocolError(
            "unsupported wire version {} (this peer speaks {})".format(
                version, WIRE_BINARY
            )
        )
    if length > max_frame:
        raise FrameTooLarge(
            "peer announced a {} byte frame (limit {})".format(
                length, max_frame
            )
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame body") from exc
    return flags, opcode, header_id, payload, HEADER_SIZE + length


async def read_binary_frame(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Optional[Dict[str, Any]]:
    """Read one v2 frame; None on clean EOF between frames."""
    message, _ = await read_binary_frame_sized(reader, max_frame)
    return message


async def read_binary_frame_sized(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Tuple[Optional[Dict[str, Any]], int]:
    """Like :func:`read_binary_frame` but also reports the frame's
    on-wire size (header + payload) for the frame-bytes metrics."""
    raw = await _read_binary_raw(reader, max_frame)
    if raw is None:
        return None, 0
    flags, opcode, header_id, payload, size = raw
    return decode_binary_payload(flags, opcode, header_id, payload), size


async def read_binary_frame_metered(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Tuple[Optional[Dict[str, Any]], int, float]:
    """(message, wire size, pure-decode seconds) — the server's read
    path, feeding the sampled decode-latency histogram without timing
    the socket wait."""
    raw = await _read_binary_raw(reader, max_frame)
    if raw is None:
        return None, 0, 0.0
    flags, opcode, header_id, payload, size = raw
    started = perf_counter()
    message = decode_binary_payload(flags, opcode, header_id, payload)
    return message, size, perf_counter() - started


async def read_json_frame_metered(
    reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
) -> Tuple[Optional[Dict[str, Any]], int, float]:
    """The v1 analogue of :func:`read_binary_frame_metered`."""
    header = await reader.read(_JSON_HEADER.size)
    if not header:
        return None, 0, 0.0
    while len(header) < _JSON_HEADER.size:
        more = await reader.read(_JSON_HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed inside a frame header")
        header += more
    (length,) = _JSON_HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            "peer announced a {} byte frame (limit {})".format(
                length, max_frame
            )
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed inside a frame body") from exc
    started = perf_counter()
    message = decode_payload(payload)
    return message, _JSON_HEADER.size + length, perf_counter() - started


# -- codec objects ---------------------------------------------------------


class JsonCodec:
    """Wire v1: length-prefixed JSON (see :mod:`.protocol`)."""

    name = "json"
    wire = WIRE_JSON
    #: Whether the server's inline hot-op dispatch lane applies; the
    #: JSON lane keeps PR 1's task-per-frame path bit-for-bit.
    inline = False

    @staticmethod
    def encode(
        message: Dict[str, Any],
        reply_to: Optional[str] = None,
        max_frame: int = MAX_FRAME,
    ) -> bytes:
        return encode_frame(message, max_frame=max_frame)

    @staticmethod
    async def read(
        reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
    ) -> Optional[Dict[str, Any]]:
        return await read_frame(reader, max_frame=max_frame)

    read_sized = staticmethod(read_frame_sized)
    read_metered = staticmethod(read_json_frame_metered)


class BinaryCodec:
    """Wire v2: struct headers + hand-rolled payload codecs."""

    name = "binary"
    wire = WIRE_BINARY
    inline = True

    @staticmethod
    def encode(
        message: Dict[str, Any],
        reply_to: Optional[str] = None,
        max_frame: int = MAX_FRAME,
    ) -> bytes:
        return encode_binary(message, reply_to, max_frame=max_frame)

    @staticmethod
    async def read(
        reader: asyncio.StreamReader, max_frame: int = MAX_FRAME
    ) -> Optional[Dict[str, Any]]:
        return await read_binary_frame(reader, max_frame=max_frame)

    read_sized = staticmethod(read_binary_frame_sized)
    read_metered = staticmethod(read_binary_frame_metered)


JSON_CODEC = JsonCodec()
BINARY_CODEC = BinaryCodec()


def codec_for(wire: int):
    """The codec object for a negotiated wire version."""
    if wire == WIRE_BINARY:
        return BINARY_CODEC
    return JSON_CODEC


def negotiate(requested: Any) -> int:
    """Server side of the handshake: the wire version granted for a
    hello/resume ``wire`` field.

    An int ≥ 2 gets the binary wire (the highest version this build
    speaks); anything else — absent, 1, or unrecognisable — keeps the
    connection on JSON v1.  Never raises: a client asking for a wire
    the server does not know simply falls back, it is not an error.
    """
    if type(requested) is int and requested >= WIRE_BINARY:
        return WIRE_BINARY
    return WIRE_JSON


def resolve_wire(wire: Any = None) -> int:
    """The wire version a client should *request*.

    ``wire`` may be a version int, a codec name (``"json"``/
    ``"binary"``), or None — which consults the ``REPRO_WIRE``
    environment variable and defaults to JSON (existing deployments see
    zero change unless they opt in).
    """
    if wire is None:
        wire = os.environ.get("REPRO_WIRE") or WIRE_JSON
    if isinstance(wire, str):
        name = wire.strip().lower()
        if name in ("json", "1", "v1"):
            return WIRE_JSON
        if name in ("binary", "bin", "2", "v2"):
            return WIRE_BINARY
        raise ValueError(
            "unknown wire {!r} (expected 'json' or 'binary')".format(wire)
        )
    if wire in SUPPORTED_WIRES:
        return int(wire)
    raise ValueError("unknown wire version {!r}".format(wire))


def wire_roundtrip(
    message: Dict[str, Any], codec=BINARY_CODEC
) -> Dict[str, Any]:
    """Encode+decode one message through ``codec`` — the explorer's
    way of proving a schedule survives the wire dialect unchanged."""
    if codec.wire == WIRE_JSON:
        return json.loads(
            json.dumps(message, separators=(",", ":"))
        )
    frame = encode_binary(message)
    _, version, flags, opcode, _, header_id, _ = _HEADER.unpack_from(frame)
    return decode_binary_payload(flags, opcode, header_id, frame[HEADER_SIZE:])
