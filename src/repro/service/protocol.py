"""The lock service's wire protocol: length-prefixed JSON frames.

Every frame is a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  Every message carries the versioned envelope of
:mod:`repro.core.serialize` (``{"v": 1, ...}``); a peer meeting an
unknown version answers with (or raises) a clear error instead of
guessing.  Requests and responses are correlated by a client-chosen
``id``, so one connection multiplexes any number of in-flight requests —
a blocked ``lock`` does not stall the heartbeats or admin queries that
share its socket.

Requests::

    {"v": 1, "id": 7, "op": "lock",
     "tid": 3, "rid": "R1", "mode": "X", "wait": true, "timeout": 2.0}

Responses::

    {"v": 1, "id": 7, "ok": true, "status": "granted",
     "event": {"type": "granted", "tid": 3, "rid": "R1", "mode": "X"}}
    {"v": 1, "id": 7, "ok": false,
     "error": {"code": "not-owner", "message": "..."}}

Operations (see :mod:`repro.service.server` for semantics): ``hello``,
``resume``, ``heartbeat``, ``begin``, ``lock``, ``commit``, ``abort``,
``batch``, ``detect``, ``snapshot``, ``resolve``, ``inspect``,
``graph``, ``stats``, ``dump``, ``holding``, ``deadlocked``,
``goodbye``.

A journaled server stamps its **restart epoch** (how many times it has
booted on its journal) into every response frame as ``epoch``; a jump
mid-conversation tells the client the server was reincarnated.  The
``hello`` reply carries a per-session ``token``; after a restart the
client's first frame may be ``resume`` instead of ``hello``, presenting
session id and token to reclaim a lease the server recovered from its
journal (the reply lists the session's surviving ``tids``)::

    {"v": 1, "id": 1, "op": "resume", "session": "S3", "token": "9f2c..."}
    {"v": 1, "id": 1, "ok": true, "epoch": 2, "session": "S3",
     "lease": 5.0, "token": "9f2c...", "tids": [7], "server": {...}}

A server that cannot honor it answers ``unknown-session`` (closed,
reaped or never journaled), ``bad-token`` or ``session-busy``.

The ``snapshot`` and ``resolve`` ops are the cluster detector's two
rounds (:mod:`repro.cluster.coordinator`).  ``snapshot`` answers this
worker's RST slice — the versioned lock-table dump of
:mod:`repro.core.serialize` plus each live resource's cluster-wide
first-lock sequence number, its per-shard epochs and the serialize
time::

    {"v": 1, "id": 4, "op": "snapshot"}
    {"v": 1, "id": 4, "ok": true, "snapshot": {
        "v": 1, "table": {"v": 1, "resources": [...]},
        "sequence": {"R1": 17, ...}, "epochs": [42], "seconds": 0.0003}}

``resolve`` routes a coordinator's staged resolutions back to the
owning worker; every item is re-checked against live state (a stale
repositioning answers ``applied: false``, a stale victim
``confirmed: false`` — never guessed at)::

    {"v": 1, "id": 5, "op": "resolve", "plan": {
        "repositions": [{"rid": "R1", "av": [3], "st": [8]}],
        "victims": [{"tid": 2, "rid": "R2"}],
        "releases": [2], "sweeps": ["R1"]}}
    {"v": 1, "id": 5, "ok": true, "reply": {
        "repositions": [{"rid": "R1", "applied": true, "delayed": [8]}],
        "victims": [{"tid": 2, "confirmed": true, "grants": [...]}],
        "releases": [{"tid": 2, "grants": []}],
        "sweeps": [{"rid": "R1", "grants": [...]}]}}

The ``batch`` op pipelines up to :data:`MAX_BATCH_OPS` sub-operations
(``begin``/``lock``/``commit``/``abort``) in one frame; the server
applies them back-to-back on its writer task — one queue pass, one
response frame — and answers a ``results`` list with one entry per
sub-op (each either ``{"op", "ok": true, ...}`` with that op's usual
fields or ``{"op", "ok": false, "error": {...}}``; a failed sub-op does
not abort the rest of the batch).  ``lock`` sub-ops never wait inside a
batch: a request that cannot be granted immediately reports
``"blocked"`` (staying queued, exactly like ``wait=false``)::

    {"v": 1, "id": 9, "op": "batch", "ops": [
        {"op": "lock", "tid": 3, "rid": "R1", "mode": "IS"},
        {"op": "lock", "tid": 3, "rid": "R2", "mode": "X"}]}
    {"v": 1, "id": 9, "ok": true, "results": [
        {"op": "lock", "ok": true, "tid": 3, "status": "granted",
         "event": {...}},
        {"op": "lock", "ok": true, "tid": 3, "status": "blocked",
         "event": {...}}]}

**Trace context.**  ``lock`` frames (and ``lock`` sub-ops inside a
``batch``) may carry a client-minted ``trace`` id and an optional
parent ``span`` ref (``"origin:span_id"``); the server attaches both
to the request's lifecycle span, so ``trace-export`` stitches one
causally-linked tree per transaction even across process hops.  A
cluster coordinator propagates its pass context the same way: every
``resolve`` plan carries ``"ctx": {"trace": ..., "span": ...}``, and
the worker parents its resolution spans to the coordinator's pass
span.  Both fields are optional and ignored by peers that predate
them::

    {"v": 1, "id": 7, "op": "lock", "tid": 3, "rid": "R1", "mode": "X",
     "trace": "trace-9f2c11ab44de", "span": "client:4"}

Lock-manager events and detection results travel as plain dicts built by
:func:`event_to_dict` / :func:`detection_to_dict` and are rebuilt into
the :mod:`repro.lockmgr.events` dataclasses by :func:`event_from_dict`,
so both ends of the wire speak the same event vocabulary as the
in-process library.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, List, Optional, Tuple

from ..core.errors import ReproError
from ..core.modes import parse_mode
from ..lockmgr.events import Aborted, Blocked, Granted, Repositioned

#: Protocol version, stamped into every frame's envelope.
WIRE_VERSION = 1

#: Default cap on one frame's payload — a garbled length prefix must
#: not make the reader try to allocate gigabytes.  Both decode paths
#: (JSON here, binary in :mod:`.wire`) take a per-connection override.
MAX_FRAME = 8 * 1024 * 1024

#: Hard cap on the sub-operations one ``batch`` frame may carry — a
#: batch runs to completion on the writer task, so its length bounds how
#: long one client can monopolize the queue.
MAX_BATCH_OPS = 256

_HEADER = struct.Struct(">I")


class ProtocolError(ReproError):
    """A malformed, oversized or version-incompatible wire frame."""


class FrameTooLarge(ProtocolError):
    """A frame (announced or outgoing) exceeds the size limit.

    Split out from the generic :class:`ProtocolError` so servers can
    answer the distinct ``frame-too-large`` error code instead of a
    bare ``protocol`` error — a client seeing it knows to shrink its
    batch, not to suspect framing corruption.
    """


class ServiceError(ReproError):
    """An error response from the lock server.

    ``code`` is the machine-readable error code from the wire (e.g.
    ``"not-owner"``, ``"session-expired"``, ``"bad-request"``).
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__("{}: {}".format(code, message))
        self.code = code
        self.message = message


# -- framing ---------------------------------------------------------------


def encode_frame(
    message: Dict[str, Any], max_frame: int = MAX_FRAME
) -> bytes:
    """Serialize one message to its length-prefixed wire form."""
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(
            "frame of {} bytes exceeds the {} byte limit".format(
                len(payload), max_frame
            )
        )
    return _HEADER.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict[str, Any]:
    """Parse and version-check one frame's payload."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("undecodable frame: {}".format(exc)) from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            "frame must be a JSON object, got {}".format(
                type(message).__name__
            )
        )
    check_wire_version(message)
    return message


async def read_frame(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME,
) -> Optional[Dict[str, Any]]:
    """Read one frame; None on clean EOF between frames.

    Raises :class:`FrameTooLarge` on an oversized length prefix and
    :class:`ProtocolError` on a truncated frame or an undecodable
    payload.
    """
    message, _ = await read_frame_sized(reader, max_frame)
    return message


async def read_frame_sized(
    reader: asyncio.StreamReader,
    max_frame: int = MAX_FRAME,
) -> "Tuple[Optional[Dict[str, Any]], int]":
    """Like :func:`read_frame` but also reports the frame's on-wire
    size (length prefix + payload) for the frame-bytes metrics."""
    header = await reader.read(_HEADER.size)
    if not header:
        return None, 0
    while len(header) < _HEADER.size:
        more = await reader.read(_HEADER.size - len(header))
        if not more:
            raise ProtocolError("connection closed inside a frame header")
        header += more
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLarge(
            "peer announced a {} byte frame (limit {})".format(
                length, max_frame
            )
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            "connection closed inside a frame body"
        ) from exc
    return decode_payload(payload), _HEADER.size + length


def check_wire_version(message: Dict[str, Any]) -> None:
    """Reject messages from a different protocol version."""
    version = message.get("v", WIRE_VERSION)
    if version != WIRE_VERSION:
        raise ProtocolError(
            "unsupported wire version {!r} (this peer speaks version "
            "{})".format(version, WIRE_VERSION)
        )


# -- message constructors --------------------------------------------------


def request(request_id: int, op: str, **fields: Any) -> Dict[str, Any]:
    """Build a request frame body."""
    message = {"v": WIRE_VERSION, "id": request_id, "op": op}
    message.update(fields)
    return message


def ok(request_id: Optional[int], **fields: Any) -> Dict[str, Any]:
    """Build a success response frame body."""
    message = {"v": WIRE_VERSION, "id": request_id, "ok": True}
    message.update(fields)
    return message


def error(
    request_id: Optional[int], code: str, message: str
) -> Dict[str, Any]:
    """Build an error response frame body."""
    return {
        "v": WIRE_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    """Return ``response`` if it is a success, raise otherwise."""
    if response.get("ok"):
        return response
    detail = response.get("error") or {}
    raise ServiceError(
        str(detail.get("code", "error")),
        str(detail.get("message", "unspecified server error")),
    )


# -- event payloads --------------------------------------------------------


def event_to_dict(event: object) -> Dict[str, Any]:
    """One lock-manager event as a JSON-ready dict."""
    if isinstance(event, Granted):
        return {
            "type": "granted",
            "tid": event.tid,
            "rid": event.rid,
            "mode": event.mode.name,
            "immediate": event.immediate,
        }
    if isinstance(event, Blocked):
        return {
            "type": "blocked",
            "tid": event.tid,
            "rid": event.rid,
            "mode": event.mode.name,
            "conversion": event.conversion,
        }
    if isinstance(event, Aborted):
        return {"type": "aborted", "tid": event.tid, "reason": event.reason}
    if isinstance(event, Repositioned):
        return {
            "type": "repositioned",
            "rid": event.rid,
            "delayed": list(event.delayed),
        }
    raise ProtocolError(
        "unknown event type {}".format(type(event).__name__)
    )


def event_from_dict(data: Dict[str, Any]) -> object:
    """Rebuild a lock-manager event from its wire dict."""
    kind = data.get("type")
    if kind == "granted":
        return Granted(
            tid=int(data["tid"]),
            rid=data["rid"],
            mode=parse_mode(data["mode"]),
            immediate=bool(data.get("immediate", False)),
        )
    if kind == "blocked":
        return Blocked(
            tid=int(data["tid"]),
            rid=data["rid"],
            mode=parse_mode(data["mode"]),
            conversion=bool(data.get("conversion", False)),
        )
    if kind == "aborted":
        return Aborted(tid=int(data["tid"]), reason=data.get("reason", ""))
    if kind == "repositioned":
        return Repositioned(
            rid=data["rid"], delayed=tuple(data.get("delayed", ()))
        )
    raise ProtocolError("unknown event type {!r}".format(kind))


def detection_to_dict(result) -> Dict[str, Any]:
    """A :class:`~repro.core.detection.DetectionResult` as a wire dict."""
    return {
        "deadlock_found": result.deadlock_found,
        "abort_free": result.abort_free,
        "aborted": list(result.aborted),
        "spared": list(result.spared),
        "grants": [event_to_dict(event) for event in result.grants],
        "repositions": [
            event_to_dict(event) for event in result.repositions
        ],
        "resolutions": [
            {
                "cycle": list(resolution.cycle),
                "chosen": str(resolution.chosen),
                "kind": (
                    resolution.chosen.kind
                    if resolution.chosen is not None
                    else None
                ),
            }
            for resolution in result.resolutions
        ],
        "stats": {
            "transactions": result.stats.transactions,
            "edges_examined": result.stats.edges_examined,
            "cycles_found": result.stats.cycles_found,
            "tdr1_applied": result.stats.tdr1_applied,
            "tdr2_applied": result.stats.tdr2_applied,
        },
    }


class RemoteDetectionResult:
    """Client-side view of one detection pass, mirroring the attribute
    surface of :class:`~repro.core.detection.DetectionResult` that
    applications use (``deadlock_found``, ``abort_free``, ``aborted``,
    ``spared``, ``grants``, ``repositions``, ``resolutions``)."""

    def __init__(self, data: Dict[str, Any]) -> None:
        self.deadlock_found: bool = bool(data.get("deadlock_found"))
        self.abort_free: bool = bool(data.get("abort_free"))
        self.aborted: List[int] = [int(t) for t in data.get("aborted", ())]
        self.spared: List[int] = [int(t) for t in data.get("spared", ())]
        self.grants = [
            event_from_dict(event) for event in data.get("grants", ())
        ]
        self.repositions = [
            event_from_dict(event) for event in data.get("repositions", ())
        ]
        self.resolutions: List[Dict[str, Any]] = list(
            data.get("resolutions", ())
        )
        self.stats: Dict[str, int] = dict(data.get("stats", {}))

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            "RemoteDetectionResult(deadlock_found={}, aborted={}, "
            "repositions={})".format(
                self.deadlock_found,
                self.aborted,
                [event.rid for event in self.repositions],
            )
        )
