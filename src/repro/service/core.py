"""The synchronous heart of the lock service.

:class:`ServiceCore` is everything the network server does *between*
sockets: sessions and leases, transaction ownership, parked ``lock``
waits and the pump that resolves them, the periodic detection step and
the service counters.  It is a plain, single-threaded state machine —
the asyncio :class:`~repro.service.server.LockServer` drives it from its
single-writer task, and the deterministic schedule explorer
(:mod:`repro.check`) drives the very same code directly, one step at a
time, under a virtual clock.

Two injection points make the core controllable:

* ``clock`` — a zero-argument callable returning the current time.
  The server installs its event loop's clock; :mod:`repro.check`
  installs a virtual clock so lease expiry becomes a schedulable
  transition instead of a wall-time race.
* :class:`ParkedWait` — a blocking ``lock`` that cannot be answered
  immediately is parked as a core object, not an asyncio future.  The
  server attaches a callback that completes the network future;
  the explorer leaves the resolution sitting in :attr:`ParkedWait.status`
  and delivers it as an explicit (reorderable, droppable) event.

The caller contract is the server's single-writer rule: all methods
must be invoked from one logical thread of control.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..core.errors import ReproError
from ..core.modes import LockMode, parse_mode
from ..core.victim import CostTable
from ..lockmgr.sharded import ShardedLockCore, resolve_shard_count
from ..obs.incidents import (
    IncidentLog,
    build_incident,
    build_near_cycle_incident,
)
from ..obs.instrument import Telemetry
from ..policy import resolve_policy
from .admin import ServiceStats
from .protocol import MAX_BATCH_OPS, ServiceError, event_to_dict

#: Bounds on a client-requested lease, seconds.
MIN_LEASE = 0.05
MAX_LEASE = 3600.0


def _batch_error(op, code: str, message: str) -> dict:
    """One failed sub-op's in-place result within a batch response."""
    return {
        "op": op,
        "ok": False,
        "error": {"code": code, "message": message},
    }


class Session:
    """One connection's service state: identity, owned transactions and
    the lease that keeps them alive."""

    def __init__(self, sid: str, lease: float, now: float) -> None:
        self.sid = sid
        self.lease = lease
        self.deadline = now + lease
        self.tids: Set[int] = set()
        self.detached = False  # said goodbye
        self.closed = False
        #: Opaque handle with a ``close()`` method (the server stores the
        #: asyncio stream writer; tests store fakes; may stay None).
        self.transport = None
        #: Resume credential, handed out at open and demanded by the
        #: ``resume`` op after a server restart.
        self.token: Optional[str] = None
        #: Lease deadline on the *wall* clock — the journaled form.  The
        #: monotonic ``deadline`` dies with the process; this one is
        #: what a restarted server judges survival against.
        self.wall_deadline = self.deadline
        #: The expiry last made durable; renews are only journaled when
        #: the lease has drifted past half its length (throttling).
        self.journaled_expiry = self.deadline

    def touch(self, now: float) -> None:
        """Renew the lease (any received frame counts as a heartbeat)."""
        self.deadline = now + self.lease

    def expired(self, now: float) -> bool:
        return now > self.deadline


class ParkedWait:
    """A blocking ``lock`` request waiting for a grant or an abort.

    ``status`` stays None until the pump resolves the wait with
    ``"granted"`` or ``"aborted"``; an attached callback (if any) fires
    exactly once at that moment.
    """

    __slots__ = ("tid", "status", "callback")

    def __init__(
        self, tid: int, callback: Optional[Callable[[str], None]] = None
    ) -> None:
        self.tid = tid
        self.status: Optional[str] = None
        self.callback = callback

    def resolve(self, status: str) -> None:
        if self.status is not None:
            return
        self.status = status
        if self.callback is not None:
            self.callback(status)


class ServiceCore:
    """Sessions, leases, ownership and parked waits over a
    :class:`LockManager` (see module docstring)."""

    def __init__(
        self,
        costs: Optional[CostTable] = None,
        continuous: bool = False,
        lease: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Optional[Telemetry] = None,
        shards: Optional[int] = None,
        sequence_source: Optional[Callable[[], int]] = None,
        journal=None,
        wall: Callable[[], float] = time.time,
        token_source: Optional[Callable[[], str]] = None,
        incident_log: Optional[IncidentLog] = None,
        policy=None,
    ) -> None:
        #: The detection policy driving this service's manager.  Like
        #: ``REPRO_SHARDS`` for the shard count, ``REPRO_POLICY``
        #: supplies the default when ``policy=None``.
        self.policy = resolve_policy(policy, continuous=continuous, env=True)
        self.continuous = self.policy.continuous
        #: Resolved shard count (``None`` means the ``REPRO_SHARDS``
        #: environment default; continuous detection forces 1).
        self.shards = resolve_shard_count(
            shards, continuous=self.continuous
        )
        self.lease = lease
        self.clock = clock
        #: Wall clock for journaled lease deadlines (the monotonic
        #: ``clock`` is meaningless across a restart); the explorer
        #: installs its virtual clock for both.
        self.wall = wall
        #: Optional :class:`~repro.service.journal.SessionJournal`; None
        #: keeps the service purely in-memory (every ``_journal_append``
        #: becomes a no-op).
        self.journal = journal
        self._token_source = token_source
        #: Incident forensics sink: every deadlock-resolving pass
        #: appends a ``repro.incident/1`` record here.  Defaults to a
        #: small in-memory ring so the explorer's incident oracle works
        #: unconfigured; the server/supervisor inject an on-disk log.
        self.incidents = (
            incident_log
            if incident_log is not None
            else IncidentLog(capacity=64)
        )
        #: Restart generation stamped onto incident records; the server
        #: bumps it after journal recovery so forensics can tell which
        #: process lifetime a deadlock belongs to.
        self.restart_epoch = 0
        # The telemetry clock reads through ``self.clock`` so a later
        # reassignment (the server installs its loop clock, the explorer
        # a virtual clock) is picked up automatically.
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(clock=lambda: self.clock())
        )
        # ``sequence_source`` is the cluster seam: a worker process
        # draws first-lock sequence numbers from a counter shared with
        # its siblings, so merged snapshots keep the cluster-wide order.
        self.manager = ShardedLockCore(
            shards=self.shards,
            costs=costs,
            listener=self.telemetry.on_event,
            sequence_source=sequence_source,
            policy=self.policy,
        )
        self.stats = ServiceStats(registry=self.telemetry.registry)
        self.sessions: Dict[str, Session] = {}
        self.owners: Dict[int, Session] = {}
        self.waiters: Dict[int, ParkedWait] = {}
        self._next_sid = 1
        self._next_tid = 1
        registry = self.telemetry.registry
        registry.gauge(
            "repro_sessions_open",
            help="open service sessions",
            fn=lambda: float(len(self.sessions)),
        )
        registry.gauge(
            "repro_transactions_active",
            help="transactions owned by a session",
            fn=lambda: float(len(self.owners)),
        )
        registry.gauge(
            "repro_parked_waiters",
            help="lock requests parked awaiting grant or abort",
            fn=lambda: float(len(self.waiters)),
        )
        registry.gauge(
            "repro_resources_locked",
            help="resources present in the lock table",
            fn=lambda: float(len(self.manager.table)),
        )
        registry.gauge(
            "repro_blocked_transactions",
            help="transactions currently blocked in the lock table",
            fn=lambda: float(self.manager.table.blocked_count()),
        )
        registry.gauge(
            "repro_lock_shards",
            help="shards the lock table is partitioned into",
            fn=lambda: float(self.manager.shard_count),
        )
        registry.gauge(
            "repro_detection_policy",
            labels={"policy": self.policy.name},
            help="active detection policy (constant 1, policy label)",
            fn=lambda: 1.0,
        )
        #: Near-cycle warnings surfaced by the predictive pre-pass;
        #: registered up front so the series exists (at 0) under every
        #: policy and dashboards need no existence checks.
        self._near_cycle_counter = registry.counter(
            "repro_near_cycles_total",
            labels={"policy": self.policy.name},
            help="near-cycle patterns flagged by the predictive "
            "pre-pass",
        )
        self._policy_abort_counter = registry.counter(
            "repro_policy_aborts_total",
            labels={"policy": self.policy.name},
            help="transactions aborted by a block-time policy decision "
            "(the nowait lane), not by a detector pass",
        )
        for shard in self.manager.shards:
            registry.gauge(
                "repro_shard_resources",
                labels={"shard": str(shard.index)},
                help="resources present in this shard's lock table",
                fn=lambda s=shard: float(len(s.table)),
            )
            registry.gauge(
                "repro_shard_blocked",
                labels={"shard": str(shard.index)},
                help="transactions blocked in this shard",
                fn=lambda s=shard: float(s.table.blocked_count()),
            )

    # -- journaling --------------------------------------------------------

    def _journal_append(self, kind: str, **fields) -> None:
        """Append one durability record (no-op without a journal).

        Called *after* the mutation it describes succeeded, so the
        journal never records an operation the table rejected; the
        server's writer loop flushes once per pass before replies are
        delivered (group commit)."""
        if self.journal is not None:
            self.journal.append(kind, **fields)
            self.stats.journal_records += 1

    def _new_token(self) -> str:
        if self._token_source is not None:
            return str(self._token_source())
        return os.urandom(8).hex()

    # -- sessions ----------------------------------------------------------

    def open_session(
        self, lease: Optional[float] = None, transport=None
    ) -> Session:
        lease = self.lease if lease is None else float(lease)
        lease = min(max(lease, MIN_LEASE), MAX_LEASE)
        session = Session("S{}".format(self._next_sid), lease, self.clock())
        self._next_sid += 1
        session.transport = transport
        session.token = self._new_token()
        session.wall_deadline = self.wall() + lease
        session.journaled_expiry = session.wall_deadline
        self.sessions[session.sid] = session
        self.stats.sessions_opened += 1
        self._journal_append(
            "open",
            sid=session.sid,
            token=session.token,
            lease=lease,
            expires=session.wall_deadline,
        )
        return session

    def touch_session(self, session: Session) -> None:
        """Renew a session's lease on both clocks; journals a ``renew``
        only once the durable expiry lags by more than half a lease, so
        heartbeats cost one record per half-lease, not one per frame."""
        session.touch(self.clock())
        session.wall_deadline = self.wall() + session.lease
        if session.wall_deadline - session.journaled_expiry > session.lease / 2:
            self._journal_append(
                "renew", sid=session.sid, expires=session.wall_deadline
            )
            session.journaled_expiry = session.wall_deadline

    def resume_session(self, sid, token, transport=None) -> Session:
        """Re-attach a client to a lease that survived a restart (the
        ``resume`` op).  The token is the credential: a wrong or missing
        one is rejected without leaking whether the session exists."""
        session = self.sessions.get(str(sid))
        if session is None or session.closed:
            raise ServiceError(
                "unknown-session",
                "session {} is not resumable".format(sid),
            )
        if not token or session.token != str(token):
            raise ServiceError(
                "bad-token",
                "resume token does not match session {}".format(sid),
            )
        if session.transport is not None and not session.detached:
            raise ServiceError(
                "session-busy",
                "session {} is attached to a live connection".format(sid),
            )
        session.transport = transport
        session.detached = False
        self.stats.sessions_resumed += 1
        self.touch_session(session)
        return session

    def close_session(self, session: Session) -> None:
        """Tear one session down: abort its transactions (freeing their
        locks and waking grantees), drop ownership, close the transport.

        Runs to completion without yielding, so it cannot interleave
        with another core operation and stays safe to call from server
        shutdown paths where the writer task may already be gone.
        """
        if session.closed:
            return
        session.closed = True
        self.sessions.pop(session.sid, None)
        self.stats.sessions_closed += 1
        self._journal_append("close", sid=session.sid)
        tids = sorted(session.tids)
        if tids:
            self.stats.aborts += len(tids)
            self._sweep_session(session, tids)
            self.pump()
        if session.transport is not None:
            session.transport.close()

    def _sweep_session(self, session: Session, tids) -> None:
        for tid in tids:
            parked = self.waiters.pop(tid, None)
            if parked is not None:
                parked.resolve("aborted")
            self.telemetry.finish(tid, aborted=True)
            try:
                self.manager.finish(tid)
            except ReproError:  # pragma: no cover - defensive
                pass
            self.owners.pop(tid, None)
        session.tids.clear()

    def expire_sessions(self, now: Optional[float] = None) -> List[Session]:
        """Close every session whose lease deadline has passed; returns
        the sessions that were reaped."""
        now = self.clock() if now is None else now
        expired = [
            session
            for session in list(self.sessions.values())
            if not session.closed and session.expired(now)
        ]
        for session in expired:
            self.stats.lease_expiries += 1
            self.close_session(session)
        return expired

    def next_deadline(self) -> Optional[float]:
        """The earliest open-session lease deadline (None when idle)."""
        deadlines = [
            session.deadline
            for session in self.sessions.values()
            if not session.closed
        ]
        return min(deadlines) if deadlines else None

    # -- ownership ------------------------------------------------------------

    def claim(self, tid: int, session: Session) -> None:
        owner = self.owners.get(tid)
        if owner is None:
            self.owners[tid] = session
            session.tids.add(tid)
        elif owner is not session:
            raise ServiceError(
                "not-owner",
                "transaction {} belongs to session {}".format(
                    tid, owner.sid
                ),
            )

    def release_claim(self, tid: int) -> None:
        owner = self.owners.pop(tid, None)
        if owner is not None:
            owner.tids.discard(tid)

    # -- operation steps -------------------------------------------------------

    def begin_step(self, session: Session, tid: Optional[int] = None) -> int:
        if tid is None:
            while (
                self._next_tid in self.owners
                or self.manager.was_aborted(self._next_tid)
            ):
                self._next_tid += 1
            tid = self._next_tid
            self._next_tid += 1
        else:
            tid = int(tid)
        fresh = tid not in self.owners
        self.claim(tid, session)
        if fresh:
            self._journal_append("begin", sid=session.sid, tid=tid)
        return tid

    def lock_step(
        self,
        session: Session,
        tid: int,
        rid: str,
        mode: LockMode,
        wait: bool = True,
        callback: Optional[Callable[[str], None]] = None,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> Tuple[str, Optional[dict], Optional[ParkedWait]]:
        """One ``lock`` operation against the manager.

        Returns ``(status, event, parked)`` where status is one of
        ``granted``/``aborted``/``blocked``/``parked``.  With
        ``wait=True`` a blocking request is parked (the returned
        :class:`ParkedWait` resolves via :meth:`pump`); parking inside
        the step means no grant can slip between the check and the
        registration.  ``trace``/``parent`` are the client-stamped
        trace context from the request frame, attached to the span this
        request opens.
        """
        self.claim(tid, session)
        if self.manager.was_aborted(tid):
            return "aborted", None, None
        event = None
        if not self.manager.is_blocked(tid):
            self.telemetry.request(tid, rid, mode, trace=trace,
                                   parent=parent)
            started = time.perf_counter()
            outcome = self.manager.lock(tid, rid, mode)
            self._journal_append(
                "lock",
                sid=session.sid,
                tid=tid,
                rid=rid,
                mode=mode.name,
                seq=self.manager.sequence_of(rid),
            )
            event = event_to_dict(outcome.event)
            detection = self.manager.last_detection
            if self.continuous and detection:
                # The continuous pass ran inside manager.lock; its
                # duration is the whole call (the pass dominates it).
                self.telemetry.detection(
                    detection, time.perf_counter() - started
                )
                self.stats.absorb_detection(detection)
            elif detection is not None and detection.aborted:
                # A block-time policy decision (the nowait lane): no
                # detector ran, so count the victims without charging
                # a detector pass.
                self.stats.victims_aborted += len(detection.aborted)
                self._policy_abort_counter.inc(len(detection.aborted))
            if outcome.granted:
                self.stats.grants += 1
                return "granted", event, None
            self.stats.blocks += 1
            if self.manager.was_aborted(tid):
                return "aborted", event, None
            if not self.manager.is_blocked(tid):
                # Continuous resolution granted us on the spot.
                self.stats.grants += 1
                return "granted", event, None
        # Blocked (or resuming an earlier blocked request).
        if wait:
            if tid in self.waiters:
                raise ServiceError(
                    "already-waiting",
                    "transaction {} already has a parked "
                    "request".format(tid),
                )
            if event is None:
                # manager.lock was skipped: a re-sent frame resuming an
                # earlier blocked request (the post-timeout path).
                self.telemetry.resume(tid, rid, mode)
            parked = ParkedWait(tid, callback)
            self.waiters[tid] = parked
            return "parked", event, parked
        if event is None:
            self.telemetry.resume(tid, rid, mode)
        return "blocked", event, None

    def cancel_wait(self, tid: int, parked: ParkedWait) -> str:
        """Give up on a parked wait (client-side timeout).

        The request stays queued in the lock table, so a retried
        ``lock`` resumes the same position.  If the wait was resolved in
        the race window before cancellation reached the writer, the
        resolution wins: its status is returned instead of ``timeout``.
        """
        if parked.status is not None:
            return parked.status
        if self.waiters.get(tid) is parked:
            del self.waiters[tid]
        self.stats.wait_timeouts += 1
        self.telemetry.wait_timeout(tid)
        return "timeout"

    def finish_step(
        self, session: Session, tid: int, aborting: bool
    ) -> List[dict]:
        self.claim(tid, session)
        self.telemetry.finish(tid, aborted=aborting)
        grants = self.manager.finish(tid)
        self._journal_append(
            "finish", sid=session.sid, tid=tid, ab=aborting
        )
        self.release_claim(tid)
        if aborting:
            self.stats.aborts += 1
        else:
            self.stats.commits += 1
        return [event_to_dict(event) for event in grants]

    def batch_step(self, session: Session, ops) -> List[dict]:
        """Apply a pipelined batch of sub-operations back-to-back.

        ``ops`` is the wire frame's list of sub-op dicts
        (``begin``/``lock``/``commit``/``abort``).  The whole batch runs
        inside one writer pass: no pump, detection pass or competing
        request interleaves between its sub-ops, and the parked-wait
        pump runs once after the batch — the per-frame analogue of a
        single shard pass.

        ``lock`` sub-ops never wait (a blocking request would stall the
        writer for every other client): a request that cannot be granted
        immediately answers ``"blocked"`` and stays queued, exactly like
        ``wait=False``, so the client can fall back to an individual
        waiting ``lock``.

        Returns one result dict per sub-op, in order.  A failed sub-op
        reports its error in place and the batch continues — partial
        results mirror what the same ops issued sequentially would have
        produced.
        """
        if not isinstance(ops, list) or not ops:
            raise ServiceError(
                "bad-request", "batch needs a non-empty list of ops"
            )
        if len(ops) > MAX_BATCH_OPS:
            raise ServiceError(
                "batch-too-large",
                "batch of {} ops exceeds the {} op limit".format(
                    len(ops), MAX_BATCH_OPS
                ),
            )
        self.stats.batches += 1
        self.stats.batched_ops += len(ops)
        self.stats.batch_saved_roundtrips += len(ops) - 1
        self.telemetry.batch(len(ops))
        return [self._batch_one(session, frame) for frame in ops]

    def _batch_one(self, session: Session, frame) -> dict:
        name = frame.get("op") if isinstance(frame, dict) else None
        try:
            if not isinstance(frame, dict):
                raise ServiceError(
                    "bad-request", "batch sub-op must be an object"
                )
            if name == "begin":
                tid = self.begin_step(session, frame.get("tid"))
                return {"op": name, "ok": True, "tid": tid}
            if name == "lock":
                tid = int(frame["tid"])
                status, event, _ = self.lock_step(
                    session,
                    tid,
                    str(frame["rid"]),
                    parse_mode(frame["mode"]),
                    wait=False,
                    trace=frame.get("trace"),
                    parent=frame.get("span"),
                )
                return {
                    "op": name,
                    "ok": True,
                    "tid": tid,
                    "status": status,
                    "event": event,
                }
            if name in ("commit", "abort"):
                tid = int(frame["tid"])
                grants = self.finish_step(
                    session, tid, aborting=name == "abort"
                )
                return {"op": name, "ok": True, "tid": tid, "grants": grants}
            raise ServiceError(
                "bad-op",
                "operation {!r} cannot be batched".format(name),
            )
        except ServiceError as exc:
            return _batch_error(name, exc.code, exc.message)
        except KeyError as exc:
            return _batch_error(
                name, "bad-request", "missing field {}".format(exc)
            )
        except (ValueError, TypeError) as exc:
            return _batch_error(name, "bad-request", str(exc))
        except ReproError as exc:
            return _batch_error(name, "error", str(exc))

    def detect_step(self):
        """One periodic detection-resolution pass plus stats.

        When the pass resolves a deadlock, a ``repro.incident/1``
        forensics record lands in :attr:`incidents` — the merged-table
        render and blocking edges are captured *before* the pass, since
        resolution mutates the table.
        """
        pre: Optional[Tuple[str, Dict[int, Optional[str]]]] = None
        if self.incidents is not None:
            table = self.manager.table
            if table.blocked_count():
                # A deadlock needs blocked transactions; skip the
                # capture on idle ticks so clean passes stay cheap.
                pre = (
                    str(table),
                    {tid: table.blocked_at(tid)
                     for tid in table.blocked_tids()},
                )
        started = time.perf_counter()
        result = self.manager.detect()
        self.telemetry.detection(result, time.perf_counter() - started)
        self.stats.absorb_detection(result)
        if result.deadlock_found:
            # A clean pass leaves the table untouched: journaling only
            # the resolving passes keeps replay byte-identical without
            # one record per detector tick.
            self._journal_append("detect")
            if self.incidents is not None:
                table_text, blocked_at = pre if pre is not None else (None, None)
                span = self.telemetry.pass_span("deadlock")
                self.incidents.append(
                    build_incident(
                        result,
                        source="service",
                        table_text=table_text,
                        blocked_at=blocked_at,
                        span=span,
                        epoch=self.restart_epoch,
                        timestamp=self.wall(),
                        policy=self.policy.name,
                    )
                )
        self._drain_policy_warnings()
        return result

    def _drain_policy_warnings(self) -> None:
        """Land the predictive pre-pass's near-cycle reports as
        warning incidents plus the ``repro_near_cycles_total`` series."""
        for report in self.policy.take_warnings():
            count = int(report.get("count", 0))
            if count <= 0:
                continue
            self._near_cycle_counter.inc(count)
            if self.incidents is not None:
                self.incidents.append(
                    build_near_cycle_incident(
                        report,
                        source="service",
                        policy=self.policy.name,
                        epoch=self.restart_epoch,
                        timestamp=self.wall(),
                    )
                )

    def snapshot_step(self) -> dict:
        """Serialize this worker's RST slice for a cluster coordinator
        (the ``snapshot`` op)."""
        self.stats.snapshots_served += 1
        return self.manager.snapshot_payload()

    def resolve_step(self, plan) -> dict:
        """Apply one coordinator resolution plan (the ``resolve`` op).

        Runs on the writer like every other mutation, so the pump after
        it wakes the plan's victims (their parked waits resolve
        ``aborted``) and grantees exactly like a local detection pass.
        """
        from ..cluster.coordinator import apply_resolution_plan

        if not isinstance(plan, dict):
            raise ServiceError(
                "bad-request", "resolve needs a plan object"
            )
        try:
            reply = apply_resolution_plan(self.manager, plan)
        except (KeyError, ValueError, TypeError) as exc:
            raise ServiceError(
                "bad-request", "malformed resolution plan: {}".format(exc)
            )
        self._journal_append("resolve", plan=plan)
        # No telemetry.finish here: the manager publishes the Aborted
        # event, which closes the victim's span through the listener —
        # the same path a local detection pass takes.
        ctx = plan.get("ctx") or {}
        trace = ctx.get("trace")
        parent = ctx.get("span")
        victim_items = list(plan.get("victims") or ())
        for slot, row in enumerate(reply["victims"]):
            if row["confirmed"]:
                self.stats.cluster_victims_aborted += 1
            else:
                self.stats.cluster_stale_resolutions += 1
            item = victim_items[slot] if slot < len(victim_items) else {}
            self.telemetry.resolution(
                "abort",
                row["tid"],
                item.get("rid"),
                row["confirmed"],
                trace=trace,
                parent=parent,
            )
        for row in reply["repositions"]:
            if row["applied"]:
                self.stats.cluster_repositionings += 1
            else:
                self.stats.cluster_stale_resolutions += 1
            self.telemetry.resolution(
                "reposition",
                0,
                row["rid"],
                row["applied"],
                trace=trace,
                parent=parent,
            )
        for row in reply["releases"]:
            self.telemetry.resolution(
                "release",
                row["tid"],
                None,
                True,
                trace=trace,
                parent=parent,
            )
        self.stats.cluster_releases += len(reply["releases"])
        return reply

    def pump(self) -> List[ParkedWait]:
        """Resolve parked ``lock`` waits against the manager's current
        state; returns the waits resolved by this call.  The server runs
        this after every writer operation."""
        resolved: List[ParkedWait] = []
        for tid, parked in list(self.waiters.items()):
            if parked.status is not None:
                del self.waiters[tid]
            elif self.manager.was_aborted(tid):
                del self.waiters[tid]
                parked.resolve("aborted")
                resolved.append(parked)
            elif not self.manager.is_blocked(tid):
                del self.waiters[tid]
                parked.resolve("granted")
                self.stats.grants += 1
                resolved.append(parked)
        return resolved

    # -- introspection ---------------------------------------------------------

    def stats_payload(self) -> Dict[str, int]:
        payload = self.stats.as_dict()
        payload["sessions"] = len(self.sessions)
        payload["transactions"] = len(self.owners)
        payload["resources"] = len(self.manager.table)
        payload["parked_waiters"] = len(self.waiters)
        payload["shards"] = self.manager.shard_count
        payload["policy"] = self.policy.name
        payload["policy_info"] = self.policy.describe()
        return payload
