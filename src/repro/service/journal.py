"""The session journal: WAL-style durability for the lock service.

A :class:`~repro.service.core.ServiceCore` is a deterministic state
machine driven by a strictly serial operation stream (the server's
single-writer rule).  That makes durability an *operation log* problem,
not a state-snapshot problem: append one record at every point the
core mutates the lock manager or the session table, and a restarted
server replays the log through the very same code paths to rebuild
RST/TST **byte-identically** — the merged-table dump of the recovered
core equals the dump of the crashed one at the last durable record.

Record kinds (one JSON object per line)::

    ("boot")                                  server (re)start marker
    ("open",   sid, token, lease, expires)    session admitted
    ("renew",  sid, expires)                  lease pushed out (throttled)
    ("close",  sid)                           session closed/expired/reaped
    ("begin",  sid, tid)                      transaction claimed
    ("lock",   sid, tid, rid, mode, seq)      manager.lock() invoked
    ("finish", sid, tid, ab)                  commit (ab=false) or abort
    ("detect", )                              periodic pass that resolved
    ("resolve", plan)                         coordinator resolution plan

``lock`` records carry the global first-lock sequence number assigned
to the resource, so replay re-asserts the recorded iteration order
(:meth:`~repro.lockmgr.sharded.ShardedLockCore.restore_sequence`)
instead of re-drawing from a live counter — which is what keeps a
restarted *cluster worker* byte-identical even though its siblings kept
advancing the shared cross-process counter while it was down.

Durability model — group commit.  ``append`` buffers; :meth:`flush`
writes the buffered lines and fsyncs according to the ``fsync`` policy
(``"batch"`` — the default — fsyncs once per flush; ``"always"``
flushes-and-fsyncs inside every append; ``"never"`` leaves syncing to
the OS).  The server calls ``flush`` once per writer pass, *after* the
operation ran but *before* its reply future is delivered, so the hot
path pays one fsync per pass, never per op, and no client ever holds a
reply whose records could still be lost.

Torn tails.  Every line is ``crc32(body) + " " + body``; the loader
stops at the first line that is truncated, undecodable or fails its
checksum and counts the remainder as corrupt tail.  A ``kill -9``
mid-write therefore recovers to the longest durable prefix — a state
the server actually passed through — which is the property the
crash-at-every-record suite in ``tests/properties`` pins down.

Restart epochs.  Every recovery appends a ``boot`` record; the count of
boot records is the server's *restart epoch*, stamped into every wire
response so clients can observe that they are talking to a reincarnation
(and resume by session token — the ``resume`` op).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional

#: Accepted values for the ``fsync`` policy knob.
FSYNC_POLICIES = ("always", "batch", "never")


def encode_record(record: Dict[str, Any]) -> str:
    """One journal line: crc32 of the canonical body, space, body."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return "{:08x} {}".format(crc, body)


def decode_record(line: str) -> Optional[Dict[str, Any]]:
    """Parse one journal line; None when truncated or corrupt."""
    if len(line) < 10 or line[8] != " ":
        return None
    prefix, body = line[:8], line[9:]
    try:
        crc = int(prefix, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != crc:
        return None
    try:
        record = json.loads(body)
    except ValueError:
        return None
    if not isinstance(record, dict) or "kind" not in record:
        return None
    return record


class SessionJournal:
    """Append-only session/lease/lock journal (see module docstring).

    ``path=None`` keeps the journal purely in memory — the explorer's
    restart fault and the property suites journal thousands of
    schedules without touching a filesystem.  With a path, appended
    records buffer until :meth:`flush` (group commit); opening an
    existing file loads its durable prefix first, so construction *is*
    crash recovery's read side.
    """

    def __init__(self, path: Optional[str] = None, fsync: str = "batch") -> None:
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                "fsync policy must be one of {}, got {!r}".format(
                    FSYNC_POLICIES, fsync
                )
            )
        self.path = path
        self.fsync = fsync
        self._records: List[Dict[str, Any]] = []
        self._pending: List[str] = []
        self._file = None
        #: Lines beyond the durable prefix dropped at load time.
        self.corrupt_tail = 0
        #: Lifetime counters (mirrored into ``ServiceStats``).
        self.appended = 0
        self.flushes = 0
        self.fsyncs = 0
        if path is not None:
            if os.path.exists(path):
                with open(path, "r", encoding="utf-8") as handle:
                    self._load_text(handle.read())
            self._file = open(path, "a", encoding="utf-8")

    # -- loading -----------------------------------------------------------

    def _load_text(self, text: str) -> None:
        lines = text.splitlines()
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            record = decode_record(line)
            if record is None:
                # Torn or corrupt: everything from here on is not part
                # of the durable prefix.
                self.corrupt_tail = len(lines) - position
                break
            self._records.append(record)

    @classmethod
    def from_text(cls, text: str) -> "SessionJournal":
        """An in-memory journal holding ``text``'s durable prefix."""
        journal = cls()
        journal._load_text(text)
        return journal

    @classmethod
    def from_records(cls, records: List[Dict[str, Any]]) -> "SessionJournal":
        """An in-memory journal holding copies of ``records`` (the
        property suites use this to cut at record boundaries)."""
        journal = cls()
        journal._records = [dict(record) for record in records]
        return journal

    # -- appending ---------------------------------------------------------

    def append(self, kind: str, **fields: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"kind": kind}
        record.update(fields)
        self._records.append(record)
        self.appended += 1
        if self._file is not None:
            self._pending.append(encode_record(record))
            if self.fsync == "always":
                self.flush()
        return record

    def append_boot(self) -> None:
        """Mark a server (re)start; bumps :attr:`epoch`."""
        self.append("boot")

    def flush(self) -> int:
        """Write buffered records (one fsync per call under the default
        ``"batch"`` policy); returns the number of lines written."""
        if not self._pending or self._file is None:
            return 0
        lines, self._pending = self._pending, []
        self._file.write("\n".join(lines) + "\n")
        self._file.flush()
        if self.fsync != "never":
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self.flushes += 1
        return len(lines)

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    def abandon(self) -> None:
        """Drop unflushed records and close without syncing — the
        in-process stand-in for ``kill -9`` (tests use it to crash a
        server at an exact record boundary)."""
        self._pending = []
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- introspection -----------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def epoch(self) -> int:
        """Restart epoch: how many times a server booted on this
        journal (the envelope's ``epoch`` field)."""
        return sum(
            1 for record in self._records if record.get("kind") == "boot"
        )

    def to_text(self) -> str:
        """The full journal as line-encoded text (tests corrupt this)."""
        return "\n".join(
            encode_record(record) for record in self._records
        )


@dataclass
class RecoveryReport:
    """What one journal replay did (also mirrored into stats/gauges)."""

    replayed: int = 0
    boots: int = 0
    sessions_restored: int = 0
    leases_honored: int = 0
    leases_reaped: int = 0
    replay_errors: int = 0
    corrupt_tail: int = 0
    seconds: float = 0.0
    #: sid -> sorted tids of every lease honored (clients resume these).
    honored: Dict[str, List[int]] = field(default_factory=dict)


def recover_into(core, journal: SessionJournal, now: Optional[float] = None):
    """Rebuild a **fresh** :class:`ServiceCore` from ``journal``.

    Replays every record through the same manager/session code the live
    server ran (telemetry muted — replay is not traffic), re-asserting
    journaled first-lock sequence numbers so the rebuilt RST/TST is
    byte-identical to the pre-crash table at the last durable record.
    Then stamps a ``boot`` record, honors every still-live lease
    (sessions stay registered, detached, awaiting ``resume``) and reaps
    the expired ones — each reap appending its own ``close`` record so
    a second restart does not resurrect it.

    ``now`` is the wall-clock instant leases are judged against
    (defaults to ``core.wall()``).  Attaches ``journal`` to ``core``
    and returns a :class:`RecoveryReport`.
    """
    from ..core.errors import ReproError
    from ..core.modes import parse_mode
    from ..cluster.coordinator import apply_resolution_plan
    from .core import Session

    started = perf_counter()
    report = RecoveryReport(corrupt_tail=journal.corrupt_tail)
    core.journal = None  # replay must never re-journal itself
    was_enabled = core.telemetry.enabled
    core.telemetry.enabled = False
    try:
        for record in journal.records():
            kind = record.get("kind")
            try:
                if kind == "boot":
                    report.boots += 1
                elif kind == "open":
                    sid = str(record["sid"])
                    session = Session(
                        sid, float(record["lease"]), core.clock()
                    )
                    session.token = record.get("token")
                    session.wall_deadline = float(record["expires"])
                    session.journaled_expiry = session.wall_deadline
                    core.sessions[sid] = session
                    report.sessions_restored += 1
                    if sid.startswith("S"):
                        try:
                            core._next_sid = max(
                                core._next_sid, int(sid[1:]) + 1
                            )
                        except ValueError:
                            pass
                elif kind == "renew":
                    session = core.sessions.get(str(record["sid"]))
                    if session is not None:
                        session.wall_deadline = float(record["expires"])
                        session.journaled_expiry = session.wall_deadline
                elif kind == "close":
                    session = core.sessions.get(str(record["sid"]))
                    if session is not None:
                        core.close_session(session)
                elif kind == "begin":
                    session = core.sessions[str(record["sid"])]
                    tid = int(record["tid"])
                    core.claim(tid, session)
                    core._next_tid = max(core._next_tid, tid + 1)
                elif kind == "lock":
                    rid = str(record["rid"])
                    core.manager.lock(
                        int(record["tid"]), rid, parse_mode(record["mode"])
                    )
                    core.manager.restore_sequence(rid, record.get("seq"))
                elif kind == "finish":
                    core.manager.finish(int(record["tid"]))
                    core.release_claim(int(record["tid"]))
                elif kind == "detect":
                    core.manager.detect()
                elif kind == "resolve":
                    apply_resolution_plan(core.manager, record["plan"])
                # Unknown kinds are skipped: a newer server's records
                # must not wedge an older reader mid-recovery.
            except (ReproError, KeyError, ValueError, TypeError):
                report.replay_errors += 1
            report.replayed += 1
        core.pump()
    finally:
        core.telemetry.enabled = was_enabled

    # The journal is live again: the boot marker and the reap closes
    # below are this incarnation's first durable records.
    core.journal = journal
    journal.append_boot()
    now = core.wall() if now is None else now
    for session in sorted(core.sessions.values(), key=lambda s: s.sid):
        if now > session.wall_deadline:
            core.stats.lease_expiries += 1
            core.close_session(session)  # appends the close record
            report.leases_reaped += 1
        else:
            # Honor the lease: re-anchor the (monotonic) deadline to
            # the wall-clock remainder and wait for a resume.
            remaining = session.wall_deadline - now
            session.deadline = core.clock() + remaining
            session.detached = True
            session.transport = None
            report.leases_honored += 1
            report.honored[session.sid] = sorted(session.tids)
    journal.flush()
    report.seconds = perf_counter() - started

    stats = core.stats
    stats.recovery_records_replayed += report.replayed
    stats.recovery_leases_honored += report.leases_honored
    stats.recovery_leases_reaped += report.leases_reaped
    stats.recovery_replay_errors += report.replay_errors
    registry = core.telemetry.registry
    registry.gauge(
        "repro_recovery_seconds",
        help="wall-clock seconds the last journal replay took",
    ).set(report.seconds)
    registry.gauge(
        "repro_recovery_records_replayed",
        help="journal records replayed by the last recovery",
    ).set(float(report.replayed))
    registry.gauge(
        "repro_recovery_leases_honored",
        help="still-live leases restored by the last recovery",
    ).set(float(report.leases_honored))
    registry.gauge(
        "repro_recovery_leases_reaped",
        help="expired leases reaped by the last recovery",
    ).set(float(report.leases_reaped))
    return report
