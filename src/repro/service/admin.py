"""Remote introspection payloads and the service's counter block.

The lock server answers ``inspect``/``graph``/``stats``/``dump`` by
serializing what the in-process introspection tools already compute:
:func:`repro.lockmgr.introspect.render_report` for the operator report,
the H/W-TWBG edge list for graph dumps, and
:mod:`repro.core.serialize` for full lock-table snapshots.  The
:class:`ServiceStats` block counts everything the service does, so a
remote operator can watch grants, blocks, detector passes, abort-free
resolutions and lease expiries without stopping the server.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict

from ..core.serialize import table_to_dict
from ..lockmgr.introspect import render_report
from ..lockmgr.manager import LockManager
from .protocol import event_to_dict


@dataclass
class ServiceStats:
    """Cumulative counters of one lock server's lifetime."""

    requests: int = 0
    grants: int = 0
    blocks: int = 0
    wait_timeouts: int = 0
    commits: int = 0
    aborts: int = 0
    detector_passes: int = 0
    deadlocks_resolved: int = 0
    abort_free_resolutions: int = 0
    victims_aborted: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0
    lease_expiries: int = 0
    rude_disconnects: int = 0
    protocol_errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict (the ``stats`` wire payload)."""
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
        }

    def absorb_detection(self, result) -> None:
        """Fold one detection pass's outcome into the counters."""
        self.detector_passes += 1
        self.deadlocks_resolved += len(result.resolutions)
        if result.abort_free:
            self.abort_free_resolutions += 1
        self.victims_aborted += len(result.aborted)


def render_stats(stats: Dict[str, Any]) -> str:
    """One aligned text block of a ``stats`` payload (CLI output)."""
    width = max(len(name) for name in stats)
    return "\n".join(
        "{:<{width}} : {}".format(name, value, width=width)
        for name, value in stats.items()
    )


def inspect_payload(manager: LockManager) -> Dict[str, Any]:
    """The ``inspect`` response: the operator report plus raw facts."""
    table = manager.table
    return {
        "report": render_report(table),
        "resources": len(table),
        "blocked": sorted(table.blocked_tids()),
    }


def graph_payload(manager: LockManager, dot: bool = False) -> Dict[str, Any]:
    """The ``graph`` response: H/W-TWBG edges, cycles, optional dot."""
    graph = manager.graph()
    payload: Dict[str, Any] = {
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "rid": edge.rid,
                "lock": edge.lock.name,
            }
            for edge in graph.edges
        ],
        "cycles": graph.elementary_cycles(),
        "text": str(graph),
    }
    if dot:
        payload["dot"] = graph.to_dot()
    return payload


def dump_payload(manager: LockManager) -> Dict[str, Any]:
    """The ``dump`` response: the versioned lock-table snapshot plus the
    paper-notation rendering."""
    return {
        "table": table_to_dict(manager.table),
        "text": str(manager.table),
    }


def log_payload(manager: LockManager, limit: int = 100) -> Dict[str, Any]:
    """The tail of the manager's cumulative event log as wire events."""
    tail = manager.log[-limit:] if limit else list(manager.log)
    return {
        "total": len(manager.log),
        "events": [event_to_dict(event) for event in tail],
    }
