"""Remote introspection payloads and the service's counter block.

The lock server answers ``inspect``/``graph``/``stats``/``dump`` by
serializing what the in-process introspection tools already compute:
:func:`repro.lockmgr.introspect.render_report` for the operator report,
the H/W-TWBG edge list for graph dumps, and
:mod:`repro.core.serialize` for full lock-table snapshots.  The
:class:`ServiceStats` block counts everything the service does, so a
remote operator can watch grants, blocks, detector passes, abort-free
resolutions and lease expiries without stopping the server.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..core.serialize import table_to_dict
from ..lockmgr.introspect import render_report
from ..lockmgr.manager import LockManager
from ..obs.metrics import MetricsRegistry
from .protocol import event_to_dict


def stat_metric_name(field: str) -> str:
    """The registry counter backing one ``ServiceStats`` field."""
    return "repro_service_{}_total".format(field)


class ServiceStats:
    """Cumulative counters of one lock server's lifetime.

    Backed by :class:`~repro.obs.metrics.MetricsRegistry` counters, so
    the same numbers answer the ``stats`` command (this class's dict
    surface) and the ``metrics`` command (Prometheus exposition under
    ``repro_service_<field>_total``).  The attribute surface is
    unchanged: ``stats.grants += 1`` works, ``ServiceStats(grants=3)``
    constructs a pre-loaded block (tests rely on both).
    """

    FIELDS = (
        "requests",
        "grants",
        "blocks",
        "wait_timeouts",
        "commits",
        "aborts",
        "batches",
        "batched_ops",
        "batch_saved_roundtrips",
        "detector_passes",
        "deadlocks_resolved",
        "abort_free_resolutions",
        "queue_repositionings",
        "requests_repositioned",
        "victims_aborted",
        "sessions_opened",
        "sessions_closed",
        "lease_expiries",
        "rude_disconnects",
        "protocol_errors",
        # Cluster-worker counters: snapshots served to a coordinator
        # and resolutions it routed back to this worker.
        "snapshots_served",
        "cluster_victims_aborted",
        "cluster_repositionings",
        "cluster_releases",
        "cluster_stale_resolutions",
        # Durability counters: journal traffic, resumed sessions and
        # what the last restart's journal replay did.
        "sessions_resumed",
        "journal_records",
        "journal_flushes",
        "recovery_records_replayed",
        "recovery_leases_honored",
        "recovery_leases_reaped",
        "recovery_replay_errors",
        # Wire-protocol counters: connections that negotiated the v2
        # binary framing, and hot ops the reader task dispatched inline
        # (the v2 fast lane) instead of spawning a per-frame task.
        "binary_connections",
        "inline_requests",
    )

    def __init__(
        self, registry: Optional[MetricsRegistry] = None, **initial: int
    ) -> None:
        unknown = set(initial) - set(self.FIELDS)
        if unknown:
            raise TypeError(
                "unknown ServiceStats field(s): {}".format(sorted(unknown))
            )
        if registry is None:
            registry = MetricsRegistry()
        self.__dict__["registry"] = registry
        self.__dict__["_counters"] = {
            field: registry.counter(
                stat_metric_name(field),
                help="service counter: " + field.replace("_", " "),
            )
            for field in self.FIELDS
        }
        for field, value in initial.items():
            self.__dict__["_counters"][field].set(value)

    def __getattr__(self, name: str) -> int:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return int(counters[name].value)
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].set(value)
        else:
            self.__dict__[name] = value

    def __repr__(self) -> str:
        return "ServiceStats({})".format(
            ", ".join(
                "{}={}".format(field, getattr(self, field))
                for field in self.FIELDS
            )
        )

    def as_dict(self) -> Dict[str, int]:
        """All counters as a plain dict (the ``stats`` wire payload)."""
        return {field: getattr(self, field) for field in self.FIELDS}

    def absorb_detection(self, result) -> None:
        """Fold one detection pass's outcome into the counters."""
        self.detector_passes += 1
        self.deadlocks_resolved += len(result.resolutions)
        if result.abort_free:
            self.abort_free_resolutions += 1
        self.victims_aborted += len(result.aborted)
        self.queue_repositionings += len(result.repositions)
        self.requests_repositioned += sum(
            len(event.delayed) for event in result.repositions
        )


def render_stats(stats: Dict[str, Any]) -> str:
    """One aligned text block of a ``stats`` payload (CLI output)."""
    width = max(len(name) for name in stats)
    return "\n".join(
        "{:<{width}} : {}".format(name, value, width=width)
        for name, value in stats.items()
    )


def inspect_payload(manager: LockManager) -> Dict[str, Any]:
    """The ``inspect`` response: the operator report plus raw facts.

    A sharded manager additionally reports one row per shard (index,
    resources, blocked transactions, queue depth, mutation epoch)."""
    table = manager.table
    payload: Dict[str, Any] = {
        "report": render_report(table),
        "resources": len(table),
        "blocked": sorted(table.blocked_tids()),
    }
    summaries = getattr(manager, "shard_summaries", None)
    if summaries is not None:
        payload["shards"] = summaries()
    return payload


def graph_payload(manager: LockManager, dot: bool = False) -> Dict[str, Any]:
    """The ``graph`` response: H/W-TWBG edges, cycles, optional dot."""
    graph = manager.graph()
    payload: Dict[str, Any] = {
        "edges": [
            {
                "source": edge.source,
                "target": edge.target,
                "label": edge.label,
                "rid": edge.rid,
                "lock": edge.lock.name,
            }
            for edge in graph.edges
        ],
        "cycles": graph.elementary_cycles(),
        "text": str(graph),
    }
    if dot:
        payload["dot"] = graph.to_dot()
    return payload


def dump_payload(manager: LockManager) -> Dict[str, Any]:
    """The ``dump`` response: the versioned lock-table snapshot plus the
    paper-notation rendering."""
    return {
        "table": table_to_dict(manager.table),
        "text": str(manager.table),
    }


def metrics_payload(core) -> Dict[str, Any]:
    """The ``metrics`` response: the registry snapshot plus its
    Prometheus text exposition."""
    registry = core.telemetry.registry
    return {
        "metrics": registry.snapshot(),
        "text": registry.render(),
        "enabled": core.telemetry.enabled,
    }


def spans_payload(
    core, limit: int = 0, annotations: bool = False
) -> Dict[str, Any]:
    """The ``spans`` response: the request-lifecycle span log.

    Annotation spans (coordinator passes, resolution applications) are
    counted separately and only listed with ``annotations=True`` — the
    default answers for lock-request lifecycles, while the trace export
    asks for everything so the causal tree is complete.
    """
    from ..obs.spans import LIFECYCLE_KINDS

    trace = core.telemetry.trace
    return {
        "total": trace.total_started,
        "annotations": trace.total_recorded,
        "open": len(trace.open_spans()),
        "spans": trace.to_dicts(
            limit=limit, kinds=None if annotations else LIFECYCLE_KINDS
        ),
    }


def log_payload(manager: LockManager, limit: int = 100) -> Dict[str, Any]:
    """The tail of the manager's cumulative event log as wire events."""
    tail = manager.log[-limit:] if limit else list(manager.log)
    return {
        "total": len(manager.log),
        "events": [event_to_dict(event) for event in tail],
    }
