"""The live operator view: ``python -m repro top`` and
``python -m repro trace-export``.

``top`` polls a running lock server's ``metrics``/``stats``/``inspect``
commands and renders a refreshing terminal dashboard: request and grant
rates (derived from successive counter samples), blocked transactions
and parked waiters, wait-time percentiles, the hottest resources by
block count, and the last detector pass.  Rendering is a pure function
of two samples (:func:`render_dashboard`), so tests drive it with
canned payloads and the polling loop stays a thin shell.

``trace-export`` dumps the server's span log (the request lifecycles of
:mod:`repro.obs.spans`) as JSON-lines to stdout or a file.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "Sample",
    "take_sample",
    "render_dashboard",
    "render_incident_pane",
    "parse_endpoints",
    "render_cluster_dashboard",
    "run_cluster_top",
    "run_top",
    "run_trace_export",
]


class Sample:
    """One poll of a server: time plus the three payloads."""

    __slots__ = ("time", "metrics", "stats", "inspect")

    def __init__(
        self,
        when: float,
        metrics: Dict[str, Any],
        stats: Dict[str, Any],
        inspect: Dict[str, Any],
    ) -> None:
        self.time = when
        self.metrics = metrics
        self.stats = stats
        self.inspect = inspect

    # -- snapshot readers ---------------------------------------------------

    def counter_total(self, name: str) -> float:
        """Sum of a counter family over all label children."""
        return sum(
            entry["value"]
            for entry in self.metrics.get("counters", [])
            if entry["name"] == name
        )

    def gauge(self, name: str) -> Optional[float]:
        for entry in self.metrics.get("gauges", []):
            if entry["name"] == name:
                return entry["value"]
        return None

    def histogram_summary(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[Dict[str, float]]:
        """Merge a histogram family's children into one summary (counts
        added bucket-wise, percentiles recomputed from the merge).
        ``labels`` restricts the merge to children carrying those
        label values (e.g. one shard's series)."""
        from .metrics import bucket_quantile

        children = [
            entry
            for entry in self.metrics.get("histograms", [])
            if entry["name"] == name
            and (
                labels is None
                or all(
                    entry.get("labels", {}).get(key) == value
                    for key, value in labels.items()
                )
            )
        ]
        if not children:
            return None
        buckets = children[0]["buckets"]
        counts = [0.0] * len(children[0]["counts"])
        total, acc, max_observed = 0, 0.0, None
        for child in children:
            for index, count in enumerate(child["counts"]):
                counts[index] += count
            total += child["count"]
            acc += child["sum"]
            if child.get("max") is not None:
                max_observed = (
                    child["max"]
                    if max_observed is None
                    else max(max_observed, child["max"])
                )
        return {
            "count": total,
            "sum": acc,
            "max": max_observed,
            "p50": bucket_quantile(buckets, counts, 0.50, max_observed),
            "p95": bucket_quantile(buckets, counts, 0.95, max_observed),
            "p99": bucket_quantile(buckets, counts, 0.99, max_observed),
        }

    def hottest_resources(self, limit: int = 5) -> List[Tuple[str, float]]:
        """Resources by cumulative block count, hottest first."""
        heat = [
            (entry["labels"].get("rid", "?"), entry["value"])
            for entry in self.metrics.get("counters", [])
            if entry["name"] == "repro_resource_blocks_total"
        ]
        heat.sort(key=lambda pair: (-pair[1], pair[0]))
        return heat[:limit]


def _rate(current: Sample, previous: Optional[Sample], name: str) -> float:
    if previous is None:
        return 0.0
    dt = current.time - previous.time
    if dt <= 0:
        return 0.0
    return (current.counter_total(name) - previous.counter_total(name)) / dt


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 0.001:
        return "{:.0f}us".format(value * 1e6)
    if value < 1.0:
        return "{:.1f}ms".format(value * 1e3)
    return "{:.2f}s".format(value)


def render_dashboard(
    sample: Sample, previous: Optional[Sample] = None, width: int = 72
) -> str:
    """The dashboard text for one poll (pure; no I/O)."""
    stats = sample.stats
    lines: List[str] = []
    title = " repro lock service — top "
    lines.append(title.center(width, "="))
    lines.append(
        "sessions {:<5} transactions {:<5} resources {:<5} "
        "parked {:<5}".format(
            stats.get("sessions", 0),
            stats.get("transactions", 0),
            stats.get("resources", 0),
            stats.get("parked_waiters", 0),
        )
    )
    lines.append(
        "requests/s {:>8.1f}   grants/s {:>8.1f}   blocks/s {:>8.1f}".format(
            _rate(sample, previous, "repro_lock_requests_total"),
            _rate(sample, previous, "repro_lock_grants_total"),
            _rate(sample, previous, "repro_lock_blocks_total"),
        )
    )
    lines.append(
        "totals: grants {}  blocks {}  timeouts {}  commits {}  "
        "aborts {}".format(
            stats.get("grants", 0),
            stats.get("blocks", 0),
            stats.get("wait_timeouts", 0),
            stats.get("commits", 0),
            stats.get("aborts", 0),
        )
    )
    blocked = sample.inspect.get("blocked", [])
    lines.append(
        "blocked txns: {}".format(
            " ".join("T{}".format(tid) for tid in blocked) or "none"
        )
    )

    waits = sample.histogram_summary("repro_lock_wait_seconds")
    lines.append("-" * width)
    if waits and waits["count"]:
        lines.append(
            "lock waits: {} observed   p50 {}   p95 {}   p99 {}   "
            "max {}".format(
                int(waits["count"]),
                _fmt_seconds(waits["p50"]),
                _fmt_seconds(waits["p95"]),
                _fmt_seconds(waits["p99"]),
                _fmt_seconds(waits["max"]),
            )
        )
    else:
        lines.append("lock waits: none observed yet")

    hottest = sample.hottest_resources()
    if hottest:
        lines.append(
            "hottest resources: "
            + "  ".join(
                "{} ({})".format(rid, int(count)) for rid, count in hottest
            )
        )

    shard_rows = sample.inspect.get("shards") or []
    if len(shard_rows) > 1:
        lines.append("-" * width)
        lines.append(
            "shards: {}   cross-shard cycles {}   stale resolutions "
            "{}".format(
                len(shard_rows),
                int(
                    sample.counter_total(
                        "repro_detector_cross_shard_cycles_total"
                    )
                ),
                int(
                    sample.counter_total(
                        "repro_detector_stale_resolutions_total"
                    )
                ),
            )
        )
        for row in shard_rows:
            snapshot = sample.histogram_summary(
                "repro_shard_snapshot_seconds",
                labels={"shard": str(row.get("shard"))},
            )
            lines.append(
                "  shard {:<3} resources {:<5} blocked {:<4} queued "
                "{:<4} snapshot p95 {}".format(
                    row.get("shard"),
                    row.get("resources", 0),
                    row.get("blocked", 0),
                    row.get("queued", 0),
                    _fmt_seconds(
                        snapshot["p95"]
                        if snapshot and snapshot["count"]
                        else None
                    ),
                )
            )

    lines.append("-" * width)
    passes = sample.counter_total("repro_detector_passes_total")
    deadlock_passes = sample.counter_total(
        "repro_detector_deadlock_passes_total"
    )
    abort_free = sample.counter_total(
        "repro_detector_abort_free_passes_total"
    )
    ratio = (
        "{:.0%}".format(abort_free / deadlock_passes)
        if deadlock_passes
        else "-"
    )
    lines.append(
        "detector: {} passes  {} with deadlock  abort-free ratio {}  "
        "TDR-1 {}  TDR-2 {}".format(
            int(passes),
            int(deadlock_passes),
            ratio,
            int(sample.counter_total("repro_detector_tdr1_total")),
            int(sample.counter_total("repro_detector_tdr2_total")),
        )
    )
    policy_name = stats.get("policy")
    if policy_name:
        lines.append(
            "policy: {}   near-cycles {}   policy aborts {}".format(
                policy_name,
                int(sample.counter_total("repro_near_cycles_total")),
                int(sample.counter_total("repro_policy_aborts_total")),
            )
        )
    last_run = sample.gauge("repro_detector_last_run")
    if passes:
        lines.append(
            "last pass: {}  over {} txns  {} cycle(s)".format(
                _fmt_seconds(sample.gauge("repro_detector_last_pass_seconds")),
                int(sample.gauge("repro_detector_last_graph_transactions") or 0),
                int(sample.gauge("repro_detector_last_cycles") or 0),
            )
        )
    else:
        lines.append("last pass: never" if last_run is None else "last pass: -")
    lines.append("=" * width)
    return "\n".join(lines)


def render_incident_pane(
    records: List[Dict[str, Any]], width: int = 72, limit: int = 3
) -> str:
    """The newest deadlock incidents as a dashboard pane (pure; no
    I/O).  ``records`` is an incident-log record list, oldest first —
    the pane shows the newest ``limit`` of them, newest on top."""
    lines = [" deadlock incidents ".center(width, "-")]
    if not records:
        lines.append("  none recorded")
        return "\n".join(lines)
    for record in reversed(records[-limit:]):
        if record.get("kind") == "near-cycle":
            lines.append(
                "  {}  {}  near-cycle warning: {} pattern(s)"
                "  policy {}".format(
                    record.get("id", "?"),
                    record.get("source", "?"),
                    record.get("near_cycles", 0),
                    record.get("policy") or "-",
                )
            )
            continue
        cycles = record.get("cycles") or []
        decisions = ",".join(
            entry.get("decision", "?") for entry in cycles
        ) or "-"
        lines.append(
            "  {}  {}  {} cycle(s) [{}]  aborted {}  "
            "repositioned {}".format(
                record.get("id", "?"),
                record.get("source", "?"),
                len(cycles),
                decisions,
                record.get("aborted") or "-",
                ",".join(
                    entry.get("rid", "?")
                    for entry in record.get("repositions") or ()
                )
                or "-",
            )
        )
        for entry in cycles:
            lines.append(
                "    cycle {}".format(
                    " -> ".join(
                        "T{}".format(tid) for tid in entry.get("cycle", ())
                    )
                )
            )
    if len(records) > limit:
        lines.append(
            "  ({} older incident(s) in the log)".format(
                len(records) - limit
            )
        )
    return "\n".join(lines)


def _incident_pane_for(path: Optional[str], width: int = 72) -> str:
    if not path:
        return ""
    from .incidents import load_incidents

    return render_incident_pane(load_incidents(path), width=width) + "\n"


async def _sample_client(client) -> Sample:
    metrics = await client.metrics()
    stats = await client.stats()
    inspect = await client.inspect()
    return Sample(time.monotonic(), metrics["metrics"], stats, inspect)


def take_sample(host: str, port: int) -> Sample:
    """One-shot poll of a server (blocking convenience for tools)."""
    from ..service.client import AsyncLockClient

    async def poll() -> Sample:
        client = await AsyncLockClient.connect(host, port, heartbeat=False)
        try:
            return await _sample_client(client)
        finally:
            await client.close()

    return asyncio.run(poll())


def run_top(
    host: str,
    port: int,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    out=None,
    incidents_path: Optional[str] = None,
) -> int:
    """The polling loop behind ``python -m repro top``.

    ``iterations=1`` (the ``--once`` flag) prints a single dashboard and
    exits; otherwise the loop refreshes every ``interval`` seconds until
    interrupted."""
    from ..service.client import AsyncLockClient

    write = out if out is not None else sys.stdout.write

    async def loop() -> int:
        client = await AsyncLockClient.connect(host, port)
        previous: Optional[Sample] = None
        count = 0
        try:
            while True:
                sample = await _sample_client(client)
                text = render_dashboard(sample, previous)
                if clear and iterations != 1:
                    write("\x1b[2J\x1b[H")
                write(text + "\n")
                write(_incident_pane_for(incidents_path))
                previous = sample
                count += 1
                if iterations is not None and count >= iterations:
                    return 0
                await asyncio.sleep(interval)
        finally:
            await client.close()

    try:
        return asyncio.run(loop())
    except KeyboardInterrupt:
        return 0


def parse_endpoints(spec: str) -> List[Tuple[str, int]]:
    """Parse ``host:port,host:port,...`` (bare ports mean localhost)."""
    endpoints: List[Tuple[str, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        host, _, port = part.rpartition(":")
        endpoints.append((host or "127.0.0.1", int(port)))
    if not endpoints:
        raise ValueError("no endpoints in {!r}".format(spec))
    return endpoints


def render_cluster_dashboard(
    samples: List[Optional[Sample]],
    endpoints: List[Tuple[str, int]],
    previous: Optional[List[Optional[Sample]]] = None,
    width: int = 72,
) -> str:
    """One frame of the cluster operator view (pure; no I/O).

    ``samples`` is index-aligned with the worker ``endpoints``; ``None``
    marks a worker that could not be polled (rendered as DOWN).  Rates
    derive from the previous frame's samples, like the single-server
    dashboard."""
    lines: List[str] = []
    title = " repro lock cluster — top "
    lines.append(title.center(width, "="))
    alive = sum(1 for sample in samples if sample is not None)
    lines.append(
        "workers {:<3} alive {:<3} down {}".format(
            len(samples),
            alive,
            " ".join(
                "w{}".format(index)
                for index, sample in enumerate(samples)
                if sample is None
            )
            or "none",
        )
    )
    totals = {"grants": 0, "blocks": 0, "commits": 0, "aborts": 0}
    cluster = {
        "snapshots_served": 0,
        "cluster_victims_aborted": 0,
        "cluster_repositionings": 0,
        "cluster_stale_resolutions": 0,
    }
    lines.append("-" * width)
    for index, sample in enumerate(samples):
        host, port = endpoints[index]
        if sample is None:
            lines.append(
                "  worker {:<3} {}:{}  DOWN".format(index, host, port)
            )
            continue
        prev = previous[index] if previous else None
        for name in totals:
            totals[name] += sample.stats.get(name, 0)
        for name in cluster:
            cluster[name] += sample.stats.get(name, 0)
        lines.append(
            "  worker {:<3} {}:{}  req/s {:>7.1f}  grants {:<6} "
            "blocked {:<4} resources {:<5}".format(
                index,
                host,
                port,
                _rate(sample, prev, "repro_lock_requests_total"),
                sample.stats.get("grants", 0),
                len(sample.inspect.get("blocked", [])),
                sample.inspect.get("resources", 0),
            )
        )
    lines.append("-" * width)
    lines.append(
        "totals: grants {}  blocks {}  commits {}  aborts {}".format(
            totals["grants"],
            totals["blocks"],
            totals["commits"],
            totals["aborts"],
        )
    )
    lines.append(
        "coordinator: snapshots {}  victims {}  repositions {}  "
        "stale {}".format(
            cluster["snapshots_served"],
            cluster["cluster_victims_aborted"],
            cluster["cluster_repositionings"],
            cluster["cluster_stale_resolutions"],
        )
    )
    lines.append("=" * width)
    return "\n".join(lines)


def run_cluster_top(
    endpoints: List[Tuple[str, int]],
    interval: float = 1.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    out=None,
    incidents_path: Optional[str] = None,
) -> int:
    """The polling loop behind ``python -m repro top --cluster``.

    Each frame polls every worker with a fresh connection, so a dead
    worker renders as DOWN instead of aborting the loop."""
    from ..service.client import AsyncLockClient

    write = out if out is not None else sys.stdout.write

    async def poll_one(host: str, port: int) -> Optional[Sample]:
        try:
            client = await AsyncLockClient.connect(
                host, port, heartbeat=False
            )
        except (ConnectionError, OSError):
            return None
        try:
            return await _sample_client(client)
        except (ConnectionError, OSError):
            return None
        finally:
            await client.close()

    async def loop() -> int:
        previous: Optional[List[Optional[Sample]]] = None
        count = 0
        while True:
            samples = list(
                await asyncio.gather(
                    *(poll_one(host, port) for host, port in endpoints)
                )
            )
            text = render_cluster_dashboard(samples, endpoints, previous)
            if clear and iterations != 1:
                write("\x1b[2J\x1b[H")
            write(text + "\n")
            write(_incident_pane_for(incidents_path))
            previous = samples
            count += 1
            if iterations is not None and count >= iterations:
                return 0
            await asyncio.sleep(interval)

    try:
        return asyncio.run(loop())
    except KeyboardInterrupt:
        return 0


def run_trace_export(
    host: str,
    port: int,
    out_path: Optional[str] = None,
    limit: int = 0,
) -> int:
    """Dump the server's span log as JSON-lines (``trace-export``).
    Returns the number of spans written."""
    from ..service.client import AsyncLockClient

    async def fetch() -> Dict[str, Any]:
        client = await AsyncLockClient.connect(host, port, heartbeat=False)
        try:
            # Annotation spans included: the export is the causal trace
            # tree, so detector-pass and resolution spans ride along
            # with the request lifecycles they explain.
            return await client.spans(limit=limit, annotations=True)
        finally:
            await client.close()

    payload = asyncio.run(fetch())
    lines = [
        json.dumps(span, sort_keys=True) for span in payload["spans"]
    ]
    text = "\n".join(lines) + ("\n" if lines else "")
    if out_path:
        with open(out_path, "w") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return len(lines)
