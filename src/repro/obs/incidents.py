"""Deadlock incident records: durable forensics for every resolved
cycle (``repro.incident/1``).

When a detector pass — single-process or the cluster coordinator's
snapshot-merge-resolve pass — finds a cycle, the operator's questions
arrive later: *what* was the cycle, *which* TRRP candidates were on the
table, *why* did TDR pick that victim, and did the resolution actually
land or go stale?  The metrics registry only keeps counters; the span
ring only keeps lifecycles.  This module keeps the decision record:

Record schema (``repro.incident/1``)::

    {"schema":  "repro.incident/1",
     "id":      "inc-1a2b3c4d",
     "ts":      1754500000.0,            # unix seconds
     "kind":    "deadlock",              # or "near-cycle" (optional,
                                         # default "deadlock")
     "source":  "service" | "cluster",
     "policy":  "periodic",              # detection policy (optional)
     "trace":   "trace-...",             # pass trace id (optional)
     "span":    "coord:7",               # pass span ref (optional)
     "epoch":   2,                       # restart epoch (optional)
     "workers": 2,                       # cluster passes only
     "table":   "R1(S): Holder(...)",    # merged snapshot render
     "cycles":  [{"cycle": [1, 2],
                  "edges": [{"tid": 1, "rid": "R2"}, ...],
                  "candidates": [{"kind": "abort", "tid": 2,
                                  "rid": "R1", "cost": 1.0}, ...],
                  "chosen": {...},       # one of the candidates
                  "decision": "tdr-1" | "tdr-2"}],
     "aborted": [2], "spared": [],       # per-item outcomes
     "repositions": [{"rid": "R1", "delayed": [3]}],
     "staleness": {"stale_victims": 0, "stale_repositions": 0},
     "cross_worker_cycles": 1,           # cluster passes only
     "stats":   {"transactions": 4, "edges_examined": 6, ...}}

``kind: "near-cycle"`` records — emitted by the predictive policy's
pre-pass when the graph is one edge short of a cycle — replace
``cycles`` with ``patterns``::

    {"schema": "repro.incident/1", "kind": "near-cycle",
     "id": "inc-...", "ts": ..., "source": "service",
     "policy": "predict", "near_cycles": 1, "truncated": false,
     "patterns": [{"path": [3, 1], "rids": ["R2"],
                   "close": {"tid": 3, "holds": ["R1"]}}]}

:class:`IncidentLog` bounds the record stream both in memory (a ring)
and on disk (the JSON-lines file is compacted back to the newest
``capacity`` records once it doubles), so a deadlock storm cannot grow
the log without bound.  ``tools/validate_records.py`` checks emitted
files against :func:`validate_incident` in CI.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, List, Optional

__all__ = [
    "SCHEMA",
    "build_incident",
    "build_near_cycle_incident",
    "candidate_to_dict",
    "validate_incident",
    "validate_incident_file",
    "incident_to_dot",
    "render_incident",
    "load_incidents",
    "IncidentLog",
]

SCHEMA = "repro.incident/1"

_NUMBER = (int, float)


def _new_incident_id() -> str:
    return "inc-" + os.urandom(4).hex()


def candidate_to_dict(candidate) -> Dict[str, Any]:
    """One TRRP victim candidate as a JSON-ready dict (TDR-1 aborts and
    TDR-2 repositionings keep their distinguishing fields)."""
    if candidate is None:
        return {}
    record: Dict[str, Any] = {
        "kind": candidate.kind,
        "cost": float(candidate.cost),
    }
    if candidate.kind == "abort":
        record["tid"] = int(candidate.tid)
        if candidate.rid is not None:
            record["rid"] = str(candidate.rid)
    else:
        record["junction"] = int(candidate.junction)
        record["rid"] = str(candidate.rid)
        record["av"] = [int(tid) for tid in candidate.av]
        record["st"] = [int(tid) for tid in candidate.st]
    return record


def build_incident(
    result,
    source: str,
    table_text: Optional[str] = None,
    blocked_at: Optional[Dict[int, Optional[str]]] = None,
    trace: Optional[str] = None,
    span: Optional[str] = None,
    epoch: Optional[int] = None,
    workers: Optional[int] = None,
    timestamp: Optional[float] = None,
    policy: Optional[str] = None,
) -> Dict[str, Any]:
    """One ``repro.incident/1`` record from a detection result.

    ``result`` is a :class:`~repro.core.detection.DetectionResult` or
    :class:`~repro.cluster.coordinator.ClusterDetection` with at least
    one resolution; ``blocked_at`` maps each cycle transaction to the
    resource it was blocked at *in the pre-pass snapshot* (the cycle's
    W/H edges); ``table_text`` is the pre-pass merged table render.
    """
    cycles: List[Dict[str, Any]] = []
    for resolution in result.resolutions:
        chosen = candidate_to_dict(resolution.chosen)
        entry: Dict[str, Any] = {
            "cycle": [int(tid) for tid in resolution.cycle],
            "candidates": [
                candidate_to_dict(candidate)
                for candidate in resolution.candidates
            ],
            "chosen": chosen,
            "decision": (
                "tdr-2" if chosen.get("kind") == "reposition" else "tdr-1"
            ),
        }
        if blocked_at:
            entry["edges"] = [
                {"tid": int(tid), "rid": blocked_at[tid]}
                for tid in resolution.cycle
                if blocked_at.get(tid) is not None
            ]
        cycles.append(entry)
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "id": _new_incident_id(),
        "ts": time.time() if timestamp is None else float(timestamp),
        "source": str(source),
        "cycles": cycles,
        "aborted": [int(tid) for tid in result.aborted],
        "spared": [int(tid) for tid in result.spared],
        "repositions": [
            {"rid": event.rid, "delayed": [int(t) for t in event.delayed]}
            for event in result.repositions
        ],
        "stats": {
            "transactions": result.stats.transactions,
            "edges_examined": result.stats.edges_examined,
            "cycles_found": result.stats.cycles_found,
            "tdr1_applied": result.stats.tdr1_applied,
            "tdr2_applied": result.stats.tdr2_applied,
        },
    }
    if trace is not None:
        record["trace"] = str(trace)
    if span is not None:
        record["span"] = str(span)
    if epoch is not None:
        record["epoch"] = int(epoch)
    if workers is not None:
        record["workers"] = int(workers)
    if table_text is not None:
        record["table"] = str(table_text)
    if policy is not None:
        record["policy"] = str(policy)
    info = getattr(result, "cluster", None)
    if info is not None:
        record["cross_worker_cycles"] = info.cross_worker_cycles
        record["staleness"] = {
            "stale_victims": info.stale_victims,
            "stale_repositions": info.stale_repositions,
        }
        record["unreachable_workers"] = list(info.unreachable_workers)
    return record


def build_near_cycle_incident(
    report: Dict[str, Any],
    source: str,
    policy: Optional[str] = None,
    trace: Optional[str] = None,
    span: Optional[str] = None,
    epoch: Optional[int] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """One ``kind: "near-cycle"`` warning record from a predictive
    pre-pass report (:func:`repro.policy.predict.find_near_cycles`):
    the graph was one edge short of a deadlock, nothing was resolved.
    """
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "kind": "near-cycle",
        "id": _new_incident_id(),
        "ts": time.time() if timestamp is None else float(timestamp),
        "source": str(source),
        "near_cycles": int(report.get("count", 0)),
        "truncated": bool(report.get("truncated", False)),
        "patterns": [
            {
                "path": [int(tid) for tid in pattern.get("path", ())],
                "rids": [str(rid) for rid in pattern.get("rids", ())],
                "close": {
                    "tid": int(pattern.get("close", {}).get("tid", 0)),
                    "holds": [
                        str(rid)
                        for rid in pattern.get("close", {}).get("holds", ())
                    ],
                },
            }
            for pattern in report.get("patterns", ())
        ],
    }
    if policy is not None:
        record["policy"] = str(policy)
    if trace is not None:
        record["trace"] = str(trace)
    if span is not None:
        record["span"] = str(span)
    if epoch is not None:
        record["epoch"] = int(epoch)
    return record


# -- validation ------------------------------------------------------------


def _validate_candidate(entry: Any, where: str) -> List[str]:
    errors: List[str] = []
    if not isinstance(entry, dict):
        return [where + " must be an object"]
    kind = entry.get("kind")
    if kind not in ("abort", "reposition"):
        errors.append(
            "{}.kind must be 'abort' or 'reposition' (got {!r})".format(
                where, kind
            )
        )
        return errors
    if not isinstance(entry.get("cost"), _NUMBER):
        errors.append(where + ".cost must be numeric")
    if kind == "abort":
        if not isinstance(entry.get("tid"), int):
            errors.append(where + ".tid must be an integer")
    else:
        if not isinstance(entry.get("junction"), int):
            errors.append(where + ".junction must be an integer")
        if not isinstance(entry.get("rid"), str):
            errors.append(where + ".rid must be a string")
        for field in ("av", "st"):
            if not isinstance(entry.get(field), list):
                errors.append("{}.{} must be a list".format(where, field))
    return errors


def _validate_near_cycle(record: Dict[str, Any]) -> List[str]:
    """Violations specific to a ``kind: "near-cycle"`` record."""
    errors: List[str] = []
    if not isinstance(record.get("near_cycles"), int):
        errors.append("near_cycles must be an integer")
    if "truncated" in record and not isinstance(record["truncated"], bool):
        errors.append("truncated must be a boolean")
    patterns = record.get("patterns")
    if not isinstance(patterns, list):
        return errors + ["patterns must be a list"]
    for index, pattern in enumerate(patterns):
        where = "patterns[{}]".format(index)
        if not isinstance(pattern, dict):
            errors.append(where + " must be an object")
            continue
        path = pattern.get("path")
        if not isinstance(path, list) or not all(
            isinstance(tid, int) for tid in path
        ):
            errors.append(where + ".path must be a list of ints")
        rids = pattern.get("rids")
        if not isinstance(rids, list) or not all(
            isinstance(rid, str) for rid in rids
        ):
            errors.append(where + ".rids must be a list of strings")
        close = pattern.get("close")
        if not isinstance(close, dict):
            errors.append(where + ".close must be an object")
        else:
            if not isinstance(close.get("tid"), int):
                errors.append(where + ".close.tid must be an integer")
            if not isinstance(close.get("holds"), list):
                errors.append(where + ".close.holds must be a list")
    return errors


def validate_incident(record: Any) -> List[str]:
    """Schema violations of one incident record (empty when valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("schema") != SCHEMA:
        errors.append(
            "schema must be {!r} (got {!r})".format(
                SCHEMA, record.get("schema")
            )
        )
    if not isinstance(record.get("id"), str) or not record.get("id"):
        errors.append("id must be a non-empty string")
    if not isinstance(record.get("ts"), _NUMBER):
        errors.append("ts must be a number")
    if record.get("source") not in ("service", "cluster"):
        errors.append(
            "source must be 'service' or 'cluster' (got {!r})".format(
                record.get("source")
            )
        )
    kind = record.get("kind", "deadlock")
    if kind not in ("deadlock", "near-cycle"):
        errors.append(
            "kind must be 'deadlock' or 'near-cycle' (got {!r})".format(
                kind
            )
        )
    if "policy" in record and not isinstance(record["policy"], str):
        errors.append("policy must be a string")
    if kind == "near-cycle":
        errors.extend(_validate_near_cycle(record))
        for field, cls in (
            ("trace", str), ("span", str), ("epoch", int),
        ):
            if field in record and not isinstance(record[field], cls):
                errors.append(
                    "{} must be a {}".format(field, cls.__name__)
                )
        return errors
    cycles = record.get("cycles")
    if not isinstance(cycles, list) or not cycles:
        errors.append("cycles must be a non-empty list")
    else:
        for index, entry in enumerate(cycles):
            where = "cycles[{}]".format(index)
            if not isinstance(entry, dict):
                errors.append(where + " must be an object")
                continue
            cycle = entry.get("cycle")
            if (
                not isinstance(cycle, list)
                or not cycle
                or not all(isinstance(tid, int) for tid in cycle)
            ):
                errors.append(
                    where + ".cycle must be a non-empty list of ints"
                )
            candidates = entry.get("candidates")
            if not isinstance(candidates, list) or not candidates:
                errors.append(
                    where + ".candidates must be a non-empty list"
                )
            else:
                for slot, candidate in enumerate(candidates):
                    errors.extend(
                        _validate_candidate(
                            candidate,
                            "{}.candidates[{}]".format(where, slot),
                        )
                    )
            errors.extend(
                _validate_candidate(entry.get("chosen"), where + ".chosen")
            )
            if entry.get("decision") not in ("tdr-1", "tdr-2"):
                errors.append(
                    where + ".decision must be 'tdr-1' or 'tdr-2'"
                )
            if "edges" in entry and not isinstance(entry["edges"], list):
                errors.append(where + ".edges must be a list")
    for field in ("aborted", "spared"):
        value = record.get(field)
        if not isinstance(value, list) or not all(
            isinstance(tid, int) for tid in value
        ):
            errors.append("{} must be a list of ints".format(field))
    repositions = record.get("repositions")
    if not isinstance(repositions, list):
        errors.append("repositions must be a list")
    else:
        for index, entry in enumerate(repositions):
            where = "repositions[{}]".format(index)
            if not isinstance(entry, dict) or not isinstance(
                entry.get("rid"), str
            ):
                errors.append(where + ".rid must be a string")
            elif not isinstance(entry.get("delayed"), list):
                errors.append(where + ".delayed must be a list")
    for field, kind in (
        ("trace", str), ("span", str), ("table", str),
        ("epoch", int), ("workers", int),
    ):
        if field in record and not isinstance(record[field], kind):
            errors.append(
                "{} must be a {}".format(field, kind.__name__)
            )
    if "staleness" in record and not isinstance(record["staleness"], dict):
        errors.append("staleness must be an object")
    if "stats" in record and not isinstance(record["stats"], dict):
        errors.append("stats must be an object")
    return errors


def validate_incident_file(path: str):
    """Validate a JSON-lines incident file; returns
    ``(record_count, errors)``."""
    errors: List[str] = []
    count = 0
    try:
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                count += 1
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    errors.append(
                        "line {}: not JSON ({})".format(line_number, exc)
                    )
                    continue
                errors.extend(
                    "line {}: {}".format(line_number, problem)
                    for problem in validate_incident(record)
                )
    except OSError as exc:
        return 0, ["cannot read {}: {}".format(path, exc)]
    if count == 0:
        errors.append("{}: no records found".format(path))
    return count, errors


# -- rendering -------------------------------------------------------------


def _chosen_label(chosen: Dict[str, Any]) -> str:
    if chosen.get("kind") == "abort":
        return "abort T{} (cost {:g})".format(
            chosen.get("tid"), chosen.get("cost", 0.0)
        )
    if chosen.get("kind") == "reposition":
        return "reposition {} (cost {:g})".format(
            chosen.get("rid"), chosen.get("cost", 0.0)
        )
    return "?"


def incident_to_dot(record: Dict[str, Any]) -> str:
    """The incident's cycles as a Graphviz digraph: transactions as
    nodes, wait edges labeled with the blocking resource, the chosen
    victim highlighted."""
    lines = ["digraph incident {"]
    lines.append(
        '  label="{} ({})";'.format(record.get("id", "?"),
                                    record.get("source", "?"))
    )
    lines.append("  node [shape=circle];")
    victims = set()
    repositioned = set()
    for entry in record.get("cycles", ()):
        chosen = entry.get("chosen") or {}
        if chosen.get("kind") == "abort":
            victims.add(chosen.get("tid"))
        elif chosen.get("kind") == "reposition":
            repositioned.add(chosen.get("rid"))
    seen_nodes = set()
    for entry in record.get("cycles", ()):
        cycle = entry.get("cycle") or []
        rid_of = {
            edge.get("tid"): edge.get("rid")
            for edge in entry.get("edges", ())
        }
        for tid in cycle:
            if tid in seen_nodes:
                continue
            seen_nodes.add(tid)
            style = (
                ' [style=filled, fillcolor=red, fontcolor=white]'
                if tid in victims
                else ""
            )
            lines.append('  "T{}"{};'.format(tid, style))
        for position, tid in enumerate(cycle):
            succ = cycle[(position + 1) % len(cycle)]
            rid = rid_of.get(tid)
            attrs = []
            if rid is not None:
                attrs.append('label="{}"'.format(rid))
                if rid in repositioned:
                    attrs.append("style=dashed")
                    attrs.append('color=blue')
            suffix = " [{}]".format(", ".join(attrs)) if attrs else ""
            lines.append('  "T{}" -> "T{}"{};'.format(tid, succ, suffix))
    lines.append("}")
    return "\n".join(lines)


def render_incident(record: Dict[str, Any]) -> str:
    """One incident as an operator-readable report (``incidents show``)."""
    if record.get("kind") == "near-cycle":
        return _render_near_cycle(record)
    lines = [
        "incident {}  source={}  ts={:.3f}".format(
            record.get("id", "?"),
            record.get("source", "?"),
            record.get("ts", 0.0),
        )
    ]
    if record.get("policy"):
        lines.append("policy {}".format(record["policy"]))
    if record.get("trace"):
        lines.append(
            "trace {}  pass span {}".format(
                record["trace"], record.get("span", "-")
            )
        )
    if "epoch" in record:
        lines.append("restart epoch {}".format(record["epoch"]))
    if "workers" in record:
        lines.append(
            "workers {}  cross-worker cycles {}".format(
                record["workers"], record.get("cross_worker_cycles", 0)
            )
        )
    for index, entry in enumerate(record.get("cycles", ()), start=1):
        lines.append(
            "cycle {}: {} -> decision {} ({})".format(
                index,
                " -> ".join(
                    "T{}".format(tid) for tid in entry.get("cycle", ())
                ),
                entry.get("decision", "?"),
                _chosen_label(entry.get("chosen") or {}),
            )
        )
        for candidate in entry.get("candidates", ()):
            lines.append("  candidate: " + _chosen_label(candidate))
    lines.append(
        "aborted: {}  spared: {}".format(
            record.get("aborted") or "-", record.get("spared") or "-"
        )
    )
    if record.get("repositions"):
        lines.append(
            "repositioned queues: "
            + ", ".join(
                entry.get("rid", "?") for entry in record["repositions"]
            )
        )
    staleness = record.get("staleness")
    if staleness:
        lines.append(
            "stale: {} victims, {} repositions".format(
                staleness.get("stale_victims", 0),
                staleness.get("stale_repositions", 0),
            )
        )
    if record.get("table"):
        lines.append("snapshot:")
        lines.extend("  " + line for line in record["table"].splitlines())
    return "\n".join(lines)


def _render_near_cycle(record: Dict[str, Any]) -> str:
    """A near-cycle warning as an operator-readable report."""
    lines = [
        "near-cycle warning {}  source={}  ts={:.3f}".format(
            record.get("id", "?"),
            record.get("source", "?"),
            record.get("ts", 0.0),
        )
    ]
    if record.get("policy"):
        lines.append("policy {}".format(record["policy"]))
    lines.append(
        "patterns one edge short of a deadlock: {}{}".format(
            record.get("near_cycles", 0),
            " (truncated scan)" if record.get("truncated") else "",
        )
    )
    for entry in record.get("patterns", ()):
        close = entry.get("close") or {}
        lines.append(
            "  {} ; closes if T{} requests one of {}".format(
                " -> ".join(
                    "T{}".format(tid) for tid in entry.get("path", ())
                ),
                close.get("tid", "?"),
                ", ".join(close.get("holds", ())) or "-",
            )
        )
    return "\n".join(lines)


# -- storage ---------------------------------------------------------------


def load_incidents(path: str, limit: int = 0) -> List[Dict[str, Any]]:
    """The newest ``limit`` records of a JSON-lines incident file
    (all of them with ``limit=0``); missing file reads as empty."""
    records: List[Dict[str, Any]] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    except OSError:
        return []
    if limit:
        records = records[-limit:]
    return records


class IncidentLog:
    """A bounded incident sink: an in-memory ring of the newest
    ``capacity`` records, optionally mirrored to a JSON-lines file that
    is compacted back to ``capacity`` records once it doubles (so a
    deadlock storm cannot grow the file without bound)."""

    def __init__(
        self, path: Optional[str] = None, capacity: int = 256
    ) -> None:
        self.path = path
        self.capacity = max(1, int(capacity))
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self.total = 0
        self._disk_records = 0
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path))
            os.makedirs(directory, exist_ok=True)
            for record in load_incidents(path):
                self._ring.append(record)
                self._disk_records += 1
            self.total = self._disk_records

    def append(self, record: Dict[str, Any]) -> None:
        self._ring.append(record)
        self.total += 1
        if self.path is None:
            return
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._disk_records += 1
        if self._disk_records > 2 * self.capacity:
            self._compact()

    def _compact(self) -> None:
        keep = load_incidents(self.path, limit=self.capacity)
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            for record in keep:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        os.replace(tmp, self.path)
        self._disk_records = len(keep)

    def recent(self, limit: int = 0) -> List[Dict[str, Any]]:
        records = list(self._ring)
        if limit:
            records = records[-limit:]
        return records

    def __len__(self) -> int:
        return len(self._ring)

    def extend(self, records: Iterable[Dict[str, Any]]) -> None:
        for record in records:
            self.append(record)
