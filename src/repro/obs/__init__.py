"""repro.obs — dependency-free telemetry for the lock stack.

Four layers, importable anywhere the lock manager is:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and fixed-bucket histograms (p50/p95/p99 summaries), Prometheus
  text exposition and a JSON snapshot;
* :mod:`repro.obs.spans` — :class:`Span`/:class:`TraceLog`, one record
  per lock request's lifecycle (``request -> blocked ->
  granted/aborted/timed-out -> released``) with wall- and virtual-clock
  stamps, exportable as JSON-lines;
* :mod:`repro.obs.instrument` — :class:`Telemetry`, the hub that
  subscribes to the lock manager's event stream, the detector and the
  service layer;
* :mod:`repro.obs.top` — the ``python -m repro top`` dashboard and
  ``trace-export``.

:mod:`repro.obs.bench` defines the ``repro.bench/1`` JSON-lines record
that ``--metrics-out`` appends to ``benchmarks/results/``.

The metric catalog and span schema are documented in
``docs/OBSERVABILITY.md``.
"""

from .instrument import Telemetry
from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    parse_exposition,
)
from .spans import Span, TERMINAL_STATES, TraceLog

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_BUCKETS",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TERMINAL_STATES",
    "Telemetry",
    "TraceLog",
    "bucket_quantile",
    "parse_exposition",
]
