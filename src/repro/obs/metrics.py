"""A dependency-free metrics registry: counters, gauges, histograms.

The design follows the Prometheus data model — named instruments with
string labels, histograms as fixed cumulative buckets — but keeps the
whole implementation in the standard library so the telemetry layer can
be imported anywhere the lock manager is (embedded, server, explorer,
benchmark) without adding a dependency.

* :class:`Counter` — a monotonically growing float (``inc``).
* :class:`Gauge` — a settable value, optionally backed by a zero-argument
  callback read at snapshot/render time (``len(sessions)``-style views
  cost nothing between scrapes).
* :class:`Histogram` — fixed upper-bound buckets plus sum/count/min/max;
  :meth:`Histogram.quantile` estimates percentiles from the bucket
  counts (rank-based, clamped to the observed maximum), which is what
  the p50/p95/p99 summaries report.
* :class:`MetricsRegistry` — get-or-create instruments by
  ``(name, labels)``, a JSON-ready :meth:`~MetricsRegistry.snapshot`,
  and Prometheus text exposition via :meth:`~MetricsRegistry.render`
  (parsed back by :func:`parse_exposition` for round-trip tests and the
  ``top`` dashboard).

All mutation is guarded by one registry lock, so the threaded realtime
harness can share a registry with its workers.
"""

from __future__ import annotations

import math
import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "DURATION_BUCKETS",
    "COUNT_BUCKETS",
    "bucket_quantile",
    "parse_exposition",
]

#: Default buckets for wait/latency histograms, in seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Buckets for sub-millisecond durations (detector passes).
DURATION_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3,
    5e-3, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0,
)

#: Buckets for small cardinalities (graph sizes, cycles, TRRPs).
COUNT_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Optional[Dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    items = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for key, _value in items:
        if not _LABEL_RE.match(key):
            raise ValueError("invalid label name {!r}".format(key))
    return items


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(items: LabelItems, extra: Optional[str] = None) -> str:
    parts = [
        '{}="{}"'.format(key, _escape_label_value(value))
        for key, value in items
    ]
    if extra is not None:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def bucket_quantile(
    bounds: Iterable[float],
    counts: Iterable[float],
    q: float,
    max_observed: Optional[float] = None,
) -> Optional[float]:
    """Rank-based quantile estimate over cumulative-style bucket data.

    ``bounds`` are the finite upper bucket edges, ``counts`` the
    per-bucket (non-cumulative) observation counts with one extra final
    entry for the ``+Inf`` bucket.  The estimate is the upper edge of
    the bucket containing the rank-``ceil(q*n)`` observation, clamped to
    the observed maximum — so it never under-reports and never exceeds
    the largest value seen.
    """
    bounds = list(bounds)
    counts = list(counts)
    total = sum(counts)
    if total <= 0:
        return None
    rank = max(1, math.ceil(q * total))
    cumulative = 0.0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            edge = bounds[index] if index < len(bounds) else math.inf
            if max_observed is not None:
                return min(edge, max_observed)
            return None if edge == math.inf else edge
    return max_observed  # pragma: no cover - defensive


class Counter:
    """A monotonically increasing value."""

    kind = "counter"

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems, lock) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up (got {})".format(amount))
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        """Set the absolute value.  Exists so mirrored counter blocks
        (:class:`~repro.service.admin.ServiceStats`) can keep plain
        attribute assignment working; application code should ``inc``."""
        with self._lock:
            self.value = float(value)


class Gauge:
    """A value that can go up and down — or a live callback."""

    kind = "gauge"

    __slots__ = ("name", "labels", "_value", "fn", "_lock")

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        lock,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self.fn = fn
        self._lock = lock

    @property
    def value(self) -> float:
        if self.fn is not None:
            try:
                return float(self.fn())
            except Exception:  # a dead callback must not kill a scrape
                return 0.0
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max and percentile
    summaries (see module docstring)."""

    kind = "histogram"

    __slots__ = (
        "name", "labels", "buckets", "counts", "sum", "count",
        "min", "max", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        lock,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # final slot: +Inf
        self.sum = 0.0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile from bucket counts (None when
        empty).  The estimate is an upper bound no larger than the
        bucket edge and never exceeds the observed maximum."""
        return bucket_quantile(self.buckets, self.counts, q, self.max)

    def summary(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _Family:
    """All children of one metric name: fixed kind, help and buckets."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name, kind, help_text, buckets) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: Dict[LabelItems, object] = {}


class MetricsRegistry:
    """Instrument factory and holder (see module docstring)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "Dict[str, _Family]" = {}

    # -- instrument factories ---------------------------------------------

    def _family(self, name, kind, help_text, buckets=None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError("invalid metric name {!r}".format(name))
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help_text, buckets)
            self._families[name] = family
            return family
        if family.kind != kind:
            raise ValueError(
                "metric {!r} already registered as a {}".format(
                    name, family.kind
                )
            )
        if buckets is not None and family.buckets != buckets:
            raise ValueError(
                "histogram {!r} already registered with different "
                "buckets".format(name)
            )
        if help_text and not family.help:
            family.help = help_text
        return family

    def counter(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Counter:
        items = _label_items(labels)
        with self._lock:
            family = self._family(name, "counter", help)
            child = family.children.get(items)
            if child is None:
                child = Counter(name, items, self._lock)
                family.children[items] = child
            return child

    def gauge(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        items = _label_items(labels)
        with self._lock:
            family = self._family(name, "gauge", help)
            child = family.children.get(items)
            if child is None:
                child = Gauge(name, items, self._lock, fn=fn)
                family.children[items] = child
            elif fn is not None:
                child.fn = fn
            return child

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Histogram:
        buckets = tuple(sorted(float(b) for b in buckets))
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        items = _label_items(labels)
        with self._lock:
            family = self._family(name, "histogram", help, buckets)
            child = family.children.get(items)
            if child is None:
                child = Histogram(
                    name, items, self._lock, buckets=family.buckets
                )
                family.children[items] = child
            return child

    # -- reads -------------------------------------------------------------

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    def get(
        self, name: str, labels: Optional[Dict[str, str]] = None
    ) -> Optional[object]:
        """The existing instrument for ``(name, labels)``, or None."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_items(labels))

    def snapshot(self) -> Dict[str, List[dict]]:
        """A JSON-ready view of every instrument (the ``metrics`` wire
        payload and the benchmark-record ``metrics`` block)."""
        counters: List[dict] = []
        gauges: List[dict] = []
        histograms: List[dict] = []
        for family in self.families():
            for child in list(family.children.values()):
                base = {"name": family.name, "labels": dict(child.labels)}
                if family.kind == "counter":
                    counters.append(dict(base, value=child.value))
                elif family.kind == "gauge":
                    gauges.append(dict(base, value=child.value))
                else:
                    entry = dict(
                        base,
                        buckets=list(child.buckets),
                        counts=list(child.counts),
                    )
                    entry.update(child.summary())
                    histograms.append(entry)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append("# HELP {} {}".format(family.name, family.help))
            lines.append("# TYPE {} {}".format(family.name, family.kind))
            for child in list(family.children.values()):
                if family.kind in ("counter", "gauge"):
                    lines.append(
                        "{}{} {}".format(
                            family.name,
                            _render_labels(child.labels),
                            _format_value(child.value),
                        )
                    )
                    continue
                cumulative = 0
                for bound, count in zip(
                    list(child.buckets) + [math.inf],
                    child.counts,
                ):
                    cumulative += count
                    lines.append(
                        "{}_bucket{} {}".format(
                            family.name,
                            _render_labels(
                                child.labels,
                                'le="{}"'.format(_format_value(bound)),
                            ),
                            _format_value(cumulative),
                        )
                    )
                lines.append(
                    "{}_sum{} {}".format(
                        family.name,
                        _render_labels(child.labels),
                        _format_value(child.sum),
                    )
                )
                lines.append(
                    "{}_count{} {}".format(
                        family.name,
                        _render_labels(child.labels),
                        _format_value(child.count),
                    )
                )
        return "\n".join(lines) + ("\n" if lines else "")


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label_value(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_number(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_exposition(text: str) -> Dict[Tuple[str, LabelItems], float]:
    """Parse Prometheus text exposition back into samples.

    Returns ``{(sample_name, sorted-label-items): value}`` — histogram
    series appear under their ``_bucket``/``_sum``/``_count`` sample
    names exactly as rendered.  Used by the round-trip tests and the
    ``top`` dashboard.
    """
    samples: Dict[Tuple[str, LabelItems], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError("unparseable exposition line {!r}".format(line))
        labels_text = match.group("labels") or ""
        items = tuple(
            sorted(
                (key, _unescape_label_value(value))
                for key, value in _LABEL_PAIR_RE.findall(labels_text)
            )
        )
        samples[(match.group("name"), items)] = _parse_number(
            match.group("value")
        )
    return samples
