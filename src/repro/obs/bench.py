"""Structured benchmark records: the ``--metrics-out`` JSON-lines path.

Every benchmark (and ``python -m repro simulate --metrics-out``) can
append one record per run to a JSON-lines file under
``benchmarks/results/``, so the performance trajectory accumulates
across PRs instead of living only in human-readable tables.

Record schema (``repro.bench/1``)::

    {"schema":    "repro.bench/1",
     "bench":     "service_closed_loop",          # experiment name
     "timestamp": 1754500000.0,                   # unix seconds
     "params":    {"backend": "remote", ...},     # optional, JSON scalars
     "summary":   {"throughput": 812.4, ...},     # numeric results
     "metrics":   {"counters": [...],             # optional: a
                   "gauges": [...],               # MetricsRegistry
                   "histograms": [...]}}          # snapshot()

``tools/validate_bench_metrics.py`` checks emitted files against this
schema in CI; :func:`validate_record` is the single source of truth it
calls.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "SCHEMA",
    "build_record",
    "append_record",
    "iter_records",
    "validate_record",
    "validate_file",
]

SCHEMA = "repro.bench/1"

_NUMBER = (int, float)


def build_record(
    bench: str,
    summary: Dict[str, float],
    metrics: Optional[Dict[str, Any]] = None,
    params: Optional[Dict[str, Any]] = None,
    timestamp: Optional[float] = None,
) -> Dict[str, Any]:
    """One schema-conforming record (validated before it is returned)."""
    record: Dict[str, Any] = {
        "schema": SCHEMA,
        "bench": str(bench),
        "timestamp": time.time() if timestamp is None else float(timestamp),
        "summary": {
            key: value
            for key, value in summary.items()
            if isinstance(value, _NUMBER) and not isinstance(value, bool)
        },
    }
    if params:
        record["params"] = dict(params)
    if metrics is not None:
        record["metrics"] = metrics
    errors = validate_record(record)
    if errors:  # pragma: no cover - build_record keeps itself honest
        raise ValueError("invalid bench record: " + "; ".join(errors))
    return record


def append_record(path: str, record: Dict[str, Any]) -> None:
    """Append one record to a JSON-lines file, creating directories as
    needed."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")


def iter_records(path: str) -> Iterator[Dict[str, Any]]:
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def validate_record(record: Any) -> List[str]:
    """Schema violations of one record (empty list when valid)."""
    errors: List[str] = []
    if not isinstance(record, dict):
        return ["record is not an object"]
    if record.get("schema") != SCHEMA:
        errors.append(
            "schema must be {!r} (got {!r})".format(
                SCHEMA, record.get("schema")
            )
        )
    if not isinstance(record.get("bench"), str) or not record.get("bench"):
        errors.append("bench must be a non-empty string")
    if not isinstance(record.get("timestamp"), _NUMBER):
        errors.append("timestamp must be a number")
    summary = record.get("summary")
    if not isinstance(summary, dict) or not summary:
        errors.append("summary must be a non-empty object")
    else:
        for key, value in summary.items():
            if not isinstance(value, _NUMBER) or isinstance(value, bool):
                errors.append(
                    "summary[{!r}] must be numeric (got {!r})".format(
                        key, value
                    )
                )
    if "params" in record and not isinstance(record["params"], dict):
        errors.append("params must be an object")
    elif isinstance(record.get("params"), dict):
        # Policy-labeled benches (the policy sweep, the serve lanes)
        # stamp the detection policy on the record; when present it must
        # be a usable label, not a placeholder.
        policy = record["params"].get("policy")
        if policy is not None and (
            not isinstance(policy, str) or not policy
        ):
            errors.append(
                "params.policy must be a non-empty string (got {!r})".format(
                    policy
                )
            )
    if "metrics" in record:
        errors.extend(_validate_metrics(record["metrics"]))
    return errors


def _validate_metrics(metrics: Any) -> List[str]:
    errors: List[str] = []
    if not isinstance(metrics, dict):
        return ["metrics must be an object"]
    for section in ("counters", "gauges", "histograms"):
        entries = metrics.get(section)
        if entries is None:
            errors.append("metrics.{} is missing".format(section))
            continue
        if not isinstance(entries, list):
            errors.append("metrics.{} must be a list".format(section))
            continue
        for index, entry in enumerate(entries):
            where = "metrics.{}[{}]".format(section, index)
            if not isinstance(entry, dict):
                errors.append(where + " must be an object")
                continue
            if not isinstance(entry.get("name"), str):
                errors.append(where + ".name must be a string")
            if not isinstance(entry.get("labels", {}), dict):
                errors.append(where + ".labels must be an object")
            if section == "histograms":
                for field in ("buckets", "counts"):
                    if not isinstance(entry.get(field), list):
                        errors.append(
                            "{}.{} must be a list".format(where, field)
                        )
                if not isinstance(entry.get("count"), _NUMBER):
                    errors.append(where + ".count must be numeric")
            elif not isinstance(entry.get("value"), _NUMBER):
                errors.append(where + ".value must be numeric")
    return errors


def validate_file(path: str) -> Tuple[int, List[str]]:
    """Validate a JSON-lines file; returns ``(record_count, errors)``."""
    errors: List[str] = []
    count = 0
    try:
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                count += 1
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    errors.append(
                        "line {}: not JSON ({})".format(line_number, exc)
                    )
                    continue
                errors.extend(
                    "line {}: {}".format(line_number, problem)
                    for problem in validate_record(record)
                )
    except OSError as exc:
        return 0, ["cannot read {}: {}".format(path, exc)]
    if count == 0:
        errors.append("{}: no records found".format(path))
    return count, errors
