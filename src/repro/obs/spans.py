"""Request-lifecycle spans: one record per lock request, from frame
arrival to its terminal event.

A :class:`Span` follows one ``(tid, rid)`` request through the states

    requested -> blocked -> granted -> released
                        \\-> aborted | timed-out

Every state change stamps a phase event carrying *both* clocks: wall
time (``time.time``, for humans correlating with logs) and the virtual
clock the owning service runs on (the asyncio loop clock on a live
server, the schedule explorer's :class:`~repro.check.schedule.VirtualClock`
under ``repro.check``).  ``granted`` is not terminal — a granted lock is
still held; strict 2PL releases it at transaction end, which closes the
span as ``released``.

A client-side timeout closes the span as ``timed-out`` even though the
underlying request stays queued (the service contract); when the client
re-sends the lock and resumes the same queue position, a new span of
kind ``resume`` tracks the second attempt.

:class:`TraceLog` owns the spans: it indexes the open ones by
``(tid, rid)``, moves finished ones into a bounded ring, and exports
everything as JSON-lines.  The span-completeness oracle in
:mod:`repro.check.oracles` asserts that a drained schedule leaves no
span open in a non-``granted`` state and no span unreleased.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

__all__ = ["Span", "TraceLog", "TERMINAL_STATES", "LIFECYCLE_KINDS"]

#: States a span can end in.  ``granted`` is live (lock held), not terminal.
TERMINAL_STATES = frozenset({"released", "aborted", "timed-out"})

#: Span kinds that follow the request lifecycle above.  Other kinds
#: (``resolution``, ``pass``) are point-in-time annotations recorded by
#: the detector coordinator and are exempt from the completeness oracle.
LIFECYCLE_KINDS = frozenset({"request", "conversion", "queue", "resume"})


class Span:
    """One lock request's lifecycle (see module docstring)."""

    __slots__ = (
        "span_id", "tid", "rid", "mode", "kind", "status", "events",
        "trace", "parent", "unfinished",
    )

    def __init__(
        self,
        span_id: int,
        tid: int,
        rid: str,
        mode: str,
        kind: str,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> None:
        self.span_id = span_id
        self.tid = tid
        self.rid = rid
        self.mode = mode
        #: ``request`` for a first attempt, ``conversion`` once blocked
        #: inside the holder list, ``queue`` once blocked in the FIFO
        #: queue, ``resume`` for a re-sent lock after a client timeout,
        #: ``resolution`` for a coordinator-routed resolution item
        #: applied on a worker, ``pass`` for a whole detector pass.
        self.kind = kind
        self.status = "requested"
        self.events: List[Dict[str, float]] = []
        #: Propagated trace context: the client-minted trace id this
        #: span belongs to, and the span ref of its causal parent
        #: (``origin:span_id`` — cross-process-unique).
        self.trace = trace
        self.parent = parent
        #: True when the span was still in flight at eviction time and
        #: was flushed to the ring instead of silently dropped.
        self.unfinished = False

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict:
        record = {
            "span": self.span_id,
            "tid": self.tid,
            "rid": self.rid,
            "mode": self.mode,
            "kind": self.kind,
            "status": self.status,
            "events": list(self.events),
        }
        if self.trace is not None:
            record["trace"] = self.trace
        if self.parent is not None:
            record["parent"] = self.parent
        if self.unfinished:
            record["unfinished"] = True
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(#{} T{} {} {} {})".format(
            self.span_id, self.tid, self.rid, self.mode, self.status
        )


class TraceLog:
    """Span book-keeping over the lock manager's event stream.

    ``clock`` is the owning service's virtual clock (defaults to
    ``time.monotonic``); wall-clock stamps always come from
    ``time.time``.  ``capacity`` bounds both the completed-span ring and
    the open-span table so a long-lived server cannot grow without
    bound: when a new span would push the open table past capacity, the
    oldest in-flight span is *flushed* into the ring with an
    ``unfinished: true`` marker (never silently dropped).  ``origin``
    names this process in exported span refs (``origin:span_id``) so
    parent links stay unambiguous across process hops.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 4096,
        origin: Optional[str] = None,
    ) -> None:
        self.clock = clock if clock is not None else time.monotonic
        self.capacity = capacity
        self.origin = origin
        self._next_id = 1
        self._open: Dict[Tuple[int, str], Span] = {}
        self._by_tid: Dict[int, Set[str]] = {}
        self._completed: Deque[Span] = deque(maxlen=capacity)
        self.total_started = 0
        #: Born-finished annotation spans (``record()``) — counted apart
        #: from the request lifecycle so ``total_started`` stays the
        #: number of lock-request spans.
        self.total_recorded = 0
        #: In-flight spans evicted (flushed unfinished) at capacity.
        self.evicted_unfinished = 0

    def span_ref(self, span: Span) -> str:
        """The cross-process-unique ref of ``span``
        (``origin:span_id``, or the bare id with no origin set)."""
        if self.origin:
            return "{}:{}".format(self.origin, span.span_id)
        return str(span.span_id)

    # -- span surface ------------------------------------------------------

    def begin(
        self,
        tid: int,
        rid: str,
        mode: str,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> Span:
        """A lock frame for ``(tid, rid)`` reached the service."""
        span = self._open.get((tid, rid))
        if span is not None:
            if trace is not None and span.trace is None:
                span.trace = trace
            if parent is not None and span.parent is None:
                span.parent = parent
            self._stamp(span, "request")
            return span
        return self._start(
            tid, rid, mode, "request", trace=trace, parent=parent
        )

    def blocked(self, tid: int, rid: str, mode: str, conversion: bool) -> Span:
        span = self._open.get((tid, rid))
        if span is None:
            span = self._start(tid, rid, mode, "request")
        span.kind = "conversion" if conversion else "queue"
        span.status = "blocked"
        self._stamp(span, "blocked")
        return span

    def granted(self, tid: int, rid: str, mode: str, immediate: bool) -> Span:
        span = self._open.get((tid, rid))
        if span is None:
            # A grant with no open span: the sweep granted a request
            # whose span was closed by a client timeout.
            span = self._start(tid, rid, mode, "resume")
        span.status = "granted"
        self._stamp(span, "granted" if not immediate else "granted-immediate")
        return span

    def resumed(self, tid: int, rid: str, mode: str) -> Optional[Span]:
        """The client re-sent a lock while its request is still queued.

        If the original span is still open (a plain duplicate) this just
        stamps it; after a timeout closed it, a fresh ``resume`` span is
        opened in the blocked state."""
        for open_rid in self._by_tid.get(tid, ()):
            span = self._open[(tid, open_rid)]
            if span.status in ("requested", "blocked"):
                self._stamp(span, "resume")
                return span
        span = self._start(tid, rid, mode, "resume")
        span.status = "blocked"
        self._stamp(span, "blocked")
        return span

    def timed_out(self, tid: int) -> Optional[Span]:
        """Close ``tid``'s waiting span as timed-out (client gave up;
        the request itself stays queued server-side)."""
        for rid in list(self._by_tid.get(tid, ())):
            span = self._open[(tid, rid)]
            if span.status in ("requested", "blocked"):
                self._close(span, "timed-out")
                return span
        return None

    def aborted(self, tid: int) -> List[Span]:
        """``tid`` was aborted (deadlock victim / lease sweep): every
        open span of the transaction ends as ``aborted``."""
        return [
            self._close(self._open[(tid, rid)], "aborted")
            for rid in list(self._by_tid.get(tid, ()))
        ]

    def finished(self, tid: int, aborted: bool = False) -> List[Span]:
        """Transaction end (strict 2PL releases everything): granted
        spans close as ``released``; anything still waiting closes as
        ``aborted`` (the queue entry is discarded with the txn)."""
        closed = []
        for rid in list(self._by_tid.get(tid, ())):
            span = self._open[(tid, rid)]
            if span.status == "granted" and not aborted:
                closed.append(self._close(span, "released"))
            else:
                closed.append(self._close(span, "aborted"))
        return closed

    # -- reads -------------------------------------------------------------

    def open_spans(self) -> List[Span]:
        return sorted(self._open.values(), key=lambda s: s.span_id)

    def completed_spans(self) -> List[Span]:
        return list(self._completed)

    def all_spans(self) -> List[Span]:
        spans = list(self._completed) + list(self._open.values())
        return sorted(spans, key=lambda s: s.span_id)

    def to_dicts(self, limit: int = 0, kinds=None) -> List[dict]:
        spans = self.all_spans()
        if kinds is not None:
            spans = [span for span in spans if span.kind in kinds]
        if limit:
            spans = spans[-limit:]
        return [span.to_dict() for span in spans]

    def export_jsonl(self, limit: int = 0) -> str:
        """The span log as JSON-lines (one span per line)."""
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for record in self.to_dicts(limit)
        )

    def record(
        self,
        tid: int,
        rid: str,
        mode: str,
        kind: str,
        status: str,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> Span:
        """Record a complete point-in-time span straight into the ring
        (coordinator pass spans, worker-side resolution applications —
        anything that is born finished)."""
        span = Span(
            self._next_id, tid, rid, mode, kind, trace=trace, parent=parent
        )
        self._next_id += 1
        self.total_recorded += 1
        self._stamp(span, "request")
        span.status = status
        self._stamp(span, status)
        self._completed.append(span)
        return span

    # -- internals ---------------------------------------------------------

    def _start(
        self,
        tid: int,
        rid: str,
        mode: str,
        kind: str,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> Span:
        if self.capacity and len(self._open) >= self.capacity:
            self._evict_oldest_open()
        span = Span(
            self._next_id, tid, rid, mode, kind, trace=trace, parent=parent
        )
        self._next_id += 1
        self.total_started += 1
        self._open[(tid, rid)] = span
        self._by_tid.setdefault(tid, set()).add(rid)
        self._stamp(span, "request")
        return span

    def _evict_oldest_open(self) -> Span:
        """Flush the oldest in-flight span into the completed ring with
        an ``unfinished`` marker (the bounded-export contract: an
        evicted span is exported, never silently dropped)."""
        span = min(self._open.values(), key=lambda s: s.span_id)
        span.unfinished = True
        self._stamp(span, "evicted")
        self._open.pop((span.tid, span.rid), None)
        rids = self._by_tid.get(span.tid)
        if rids is not None:
            rids.discard(span.rid)
            if not rids:
                del self._by_tid[span.tid]
        self._completed.append(span)
        self.evicted_unfinished += 1
        return span

    def _stamp(self, span: Span, phase: str) -> None:
        span.events.append(
            {"phase": phase, "wall": time.time(), "virtual": self.clock()}
        )

    def _close(self, span: Span, status: str) -> Span:
        span.status = status
        self._stamp(span, status)
        self._open.pop((span.tid, span.rid), None)
        rids = self._by_tid.get(span.tid)
        if rids is not None:
            rids.discard(span.rid)
            if not rids:
                del self._by_tid[span.tid]
        self._completed.append(span)
        return span
