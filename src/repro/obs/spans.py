"""Request-lifecycle spans: one record per lock request, from frame
arrival to its terminal event.

A :class:`Span` follows one ``(tid, rid)`` request through the states

    requested -> blocked -> granted -> released
                        \\-> aborted | timed-out

Every state change stamps a phase event carrying *both* clocks: wall
time (``time.time``, for humans correlating with logs) and the virtual
clock the owning service runs on (the asyncio loop clock on a live
server, the schedule explorer's :class:`~repro.check.schedule.VirtualClock`
under ``repro.check``).  ``granted`` is not terminal — a granted lock is
still held; strict 2PL releases it at transaction end, which closes the
span as ``released``.

A client-side timeout closes the span as ``timed-out`` even though the
underlying request stays queued (the service contract); when the client
re-sends the lock and resumes the same queue position, a new span of
kind ``resume`` tracks the second attempt.

:class:`TraceLog` owns the spans: it indexes the open ones by
``(tid, rid)``, moves finished ones into a bounded ring, and exports
everything as JSON-lines.  The span-completeness oracle in
:mod:`repro.check.oracles` asserts that a drained schedule leaves no
span open in a non-``granted`` state and no span unreleased.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

__all__ = ["Span", "TraceLog", "TERMINAL_STATES"]

#: States a span can end in.  ``granted`` is live (lock held), not terminal.
TERMINAL_STATES = frozenset({"released", "aborted", "timed-out"})


class Span:
    """One lock request's lifecycle (see module docstring)."""

    __slots__ = ("span_id", "tid", "rid", "mode", "kind", "status", "events")

    def __init__(
        self, span_id: int, tid: int, rid: str, mode: str, kind: str
    ) -> None:
        self.span_id = span_id
        self.tid = tid
        self.rid = rid
        self.mode = mode
        #: ``request`` for a first attempt, ``conversion`` once blocked
        #: inside the holder list, ``queue`` once blocked in the FIFO
        #: queue, ``resume`` for a re-sent lock after a client timeout.
        self.kind = kind
        self.status = "requested"
        self.events: List[Dict[str, float]] = []

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def to_dict(self) -> dict:
        return {
            "span": self.span_id,
            "tid": self.tid,
            "rid": self.rid,
            "mode": self.mode,
            "kind": self.kind,
            "status": self.status,
            "events": list(self.events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(#{} T{} {} {} {})".format(
            self.span_id, self.tid, self.rid, self.mode, self.status
        )


class TraceLog:
    """Span book-keeping over the lock manager's event stream.

    ``clock`` is the owning service's virtual clock (defaults to
    ``time.monotonic``); wall-clock stamps always come from
    ``time.time``.  ``capacity`` bounds the completed-span ring so a
    long-lived server cannot grow without bound.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = 4096,
    ) -> None:
        self.clock = clock if clock is not None else time.monotonic
        self._next_id = 1
        self._open: Dict[Tuple[int, str], Span] = {}
        self._by_tid: Dict[int, Set[str]] = {}
        self._completed: Deque[Span] = deque(maxlen=capacity)
        self.total_started = 0

    # -- span surface ------------------------------------------------------

    def begin(self, tid: int, rid: str, mode: str) -> Span:
        """A lock frame for ``(tid, rid)`` reached the service."""
        span = self._open.get((tid, rid))
        if span is not None:
            self._stamp(span, "request")
            return span
        return self._start(tid, rid, mode, "request")

    def blocked(self, tid: int, rid: str, mode: str, conversion: bool) -> Span:
        span = self._open.get((tid, rid))
        if span is None:
            span = self._start(tid, rid, mode, "request")
        span.kind = "conversion" if conversion else "queue"
        span.status = "blocked"
        self._stamp(span, "blocked")
        return span

    def granted(self, tid: int, rid: str, mode: str, immediate: bool) -> Span:
        span = self._open.get((tid, rid))
        if span is None:
            # A grant with no open span: the sweep granted a request
            # whose span was closed by a client timeout.
            span = self._start(tid, rid, mode, "resume")
        span.status = "granted"
        self._stamp(span, "granted" if not immediate else "granted-immediate")
        return span

    def resumed(self, tid: int, rid: str, mode: str) -> Optional[Span]:
        """The client re-sent a lock while its request is still queued.

        If the original span is still open (a plain duplicate) this just
        stamps it; after a timeout closed it, a fresh ``resume`` span is
        opened in the blocked state."""
        for open_rid in self._by_tid.get(tid, ()):
            span = self._open[(tid, open_rid)]
            if span.status in ("requested", "blocked"):
                self._stamp(span, "resume")
                return span
        span = self._start(tid, rid, mode, "resume")
        span.status = "blocked"
        self._stamp(span, "blocked")
        return span

    def timed_out(self, tid: int) -> Optional[Span]:
        """Close ``tid``'s waiting span as timed-out (client gave up;
        the request itself stays queued server-side)."""
        for rid in list(self._by_tid.get(tid, ())):
            span = self._open[(tid, rid)]
            if span.status in ("requested", "blocked"):
                self._close(span, "timed-out")
                return span
        return None

    def aborted(self, tid: int) -> List[Span]:
        """``tid`` was aborted (deadlock victim / lease sweep): every
        open span of the transaction ends as ``aborted``."""
        return [
            self._close(self._open[(tid, rid)], "aborted")
            for rid in list(self._by_tid.get(tid, ()))
        ]

    def finished(self, tid: int, aborted: bool = False) -> List[Span]:
        """Transaction end (strict 2PL releases everything): granted
        spans close as ``released``; anything still waiting closes as
        ``aborted`` (the queue entry is discarded with the txn)."""
        closed = []
        for rid in list(self._by_tid.get(tid, ())):
            span = self._open[(tid, rid)]
            if span.status == "granted" and not aborted:
                closed.append(self._close(span, "released"))
            else:
                closed.append(self._close(span, "aborted"))
        return closed

    # -- reads -------------------------------------------------------------

    def open_spans(self) -> List[Span]:
        return sorted(self._open.values(), key=lambda s: s.span_id)

    def completed_spans(self) -> List[Span]:
        return list(self._completed)

    def all_spans(self) -> List[Span]:
        spans = list(self._completed) + list(self._open.values())
        return sorted(spans, key=lambda s: s.span_id)

    def to_dicts(self, limit: int = 0) -> List[dict]:
        spans = self.all_spans()
        if limit:
            spans = spans[-limit:]
        return [span.to_dict() for span in spans]

    def export_jsonl(self, limit: int = 0) -> str:
        """The span log as JSON-lines (one span per line)."""
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for record in self.to_dicts(limit)
        )

    # -- internals ---------------------------------------------------------

    def _start(self, tid: int, rid: str, mode: str, kind: str) -> Span:
        span = Span(self._next_id, tid, rid, mode, kind)
        self._next_id += 1
        self.total_started += 1
        self._open[(tid, rid)] = span
        self._by_tid.setdefault(tid, set()).add(rid)
        self._stamp(span, "request")
        return span

    def _stamp(self, span: Span, phase: str) -> None:
        span.events.append(
            {"phase": phase, "wall": time.time(), "virtual": self.clock()}
        )

    def _close(self, span: Span, status: str) -> Span:
        span.status = status
        self._stamp(span, status)
        self._open.pop((span.tid, span.rid), None)
        rids = self._by_tid.get(span.tid)
        if rids is not None:
            rids.discard(span.rid)
            if not rids:
                del self._by_tid[span.tid]
        self._completed.append(span)
        return span
