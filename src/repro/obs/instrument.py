"""The telemetry hub: one object wiring the lock stack's seams into a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.spans.TraceLog`.

The lock manager already reports every observable mutation as an event
(:mod:`repro.lockmgr.events`); :meth:`Telemetry.on_event` is the
listener a :class:`~repro.lockmgr.manager.LockManager` calls for each
one, feeding the per-mode/per-resource wait-time histograms and the
block/grant/reposition counters.  The service layer adds the pieces only
it knows — frame arrival (:meth:`request`), resumed waits
(:meth:`resume`), client timeouts (:meth:`wait_timeout`), transaction
end (:meth:`finish`) — and the detector reports each pass through
:meth:`detection`.

``enabled=False`` turns every hook into an early return while keeping
the registry alive (the service's mirrored ``ServiceStats`` counters
still work), which is how the ``<=5%`` instrumentation-overhead budget
is enforced: the disabled path costs one attribute load and a branch.

The metric catalog lives in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..core.victim import AbortCandidate
from ..lockmgr.events import Aborted, Blocked, Granted, Repositioned
from .metrics import (
    COUNT_BUCKETS,
    DEFAULT_BUCKETS,
    DURATION_BUCKETS,
    MetricsRegistry,
)
from .spans import TraceLog

__all__ = ["Telemetry"]


class Telemetry:
    """Registry + trace log + the instrumentation hooks (see module
    docstring).  ``clock`` is the owning service's (possibly virtual)
    clock; wall time is always stamped alongside it."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
        trace_capacity: int = 4096,
        registry: Optional[MetricsRegistry] = None,
        origin: Optional[str] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self._clock = clock if clock is not None else time.monotonic
        self.trace = TraceLog(
            clock=self._clock, capacity=trace_capacity, origin=origin
        )
        #: tid -> (virtual time of first block, mode name, wait kind).
        #: Survives client timeouts (the request stays queued), so the
        #: wait histogram measures time from first block to grant.
        self._blocked_since: Dict[int, Tuple[float, str, str]] = {}

    # -- service-layer hooks ----------------------------------------------

    def request(
        self,
        tid: int,
        rid: str,
        mode,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> None:
        """A fresh lock frame is about to hit the manager.  ``trace``
        and ``parent`` are the client-stamped trace context (trace id +
        parent span ref) propagated from the request frame."""
        if not self.enabled:
            return
        self.registry.counter(
            "repro_lock_requests_total",
            help="lock frames issued to the manager",
        ).inc()
        self.trace.begin(tid, rid, _mode_name(mode), trace=trace,
                         parent=parent)

    def resume(self, tid: int, rid: str, mode) -> None:
        """A lock frame arrived for a transaction already blocked (the
        request-stays-queued resume path after a client timeout)."""
        if not self.enabled:
            return
        self.registry.counter(
            "repro_lock_requests_total",
            help="lock frames issued to the manager",
        ).inc()
        self.trace.resumed(tid, rid, _mode_name(mode))

    def wait_timeout(self, tid: int) -> None:
        """The client gave up waiting; the request stays queued."""
        if not self.enabled:
            return
        self.registry.counter(
            "repro_lock_wait_timeouts_total",
            help="parked waits abandoned by client timeout",
        ).inc()
        self.trace.timed_out(tid)

    def batch(self, size: int) -> None:
        """One ``batch`` frame carrying ``size`` pipelined sub-ops."""
        if not self.enabled:
            return
        self.registry.histogram(
            "repro_batch_size",
            help="sub-operations per batch frame",
            buckets=COUNT_BUCKETS,
        ).observe(size)
        self.registry.counter(
            "repro_batch_saved_roundtrips_total",
            help="network round-trips avoided by batching (size-1 "
            "per batch)",
        ).inc(max(size - 1, 0))

    def finish(self, tid: int, aborted: bool = False) -> None:
        """Transaction end: close its spans, forget its pending wait."""
        if not self.enabled:
            return
        self._blocked_since.pop(tid, None)
        self.trace.finished(tid, aborted=aborted)

    def resolution(
        self,
        action: str,
        tid: int,
        rid: Optional[str],
        applied: bool,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ) -> None:
        """One coordinator-routed resolution item landed (or went
        stale) on this worker: a ``resolution`` span parented to the
        coordinator's pass span, so ``trace-export`` links the worker's
        side of the resolution to the pass that staged it."""
        if not self.enabled:
            return
        self.registry.counter(
            "repro_resolution_items_total",
            labels={
                "action": action,
                "outcome": "applied" if applied else "stale",
            },
            help="coordinator resolution items by action and outcome",
        ).inc()
        self.trace.record(
            tid,
            rid or "",
            action,
            "resolution",
            "applied" if applied else "stale",
            trace=trace,
            parent=parent,
        )

    def pass_span(
        self,
        status: str,
        trace: Optional[str] = None,
        parent: Optional[str] = None,
    ):
        """Record a detector-pass span and return its cross-process ref
        (None with telemetry disabled)."""
        if not self.enabled:
            return None
        span = self.trace.record(
            0, "", "", "pass", status, trace=trace, parent=parent
        )
        return self.trace.span_ref(span)

    def pending_waits(self) -> List[int]:
        """Transactions blocked without a terminal outcome yet (the
        span-completeness oracle checks this drains to empty)."""
        return sorted(self._blocked_since)

    # -- lock-manager event stream ----------------------------------------

    def on_event(self, event) -> None:
        """Listener for :class:`~repro.lockmgr.manager.LockManager`."""
        if not self.enabled:
            return
        if isinstance(event, Granted):
            self._on_granted(event)
        elif isinstance(event, Blocked):
            self._on_blocked(event)
        elif isinstance(event, Aborted):
            self._on_aborted(event)
        elif isinstance(event, Repositioned):
            self._on_repositioned(event)

    def _on_granted(self, event: Granted) -> None:
        path = "immediate" if event.immediate else "waited"
        self.registry.counter(
            "repro_lock_grants_total",
            labels={"path": path},
            help="granted lock requests by grant path",
        ).inc()
        if not event.immediate:
            since = self._blocked_since.pop(event.tid, None)
            if since is not None:
                started, mode_name, kind = since
                self.registry.histogram(
                    "repro_lock_wait_seconds",
                    labels={"mode": mode_name, "kind": kind},
                    help="time from first block to grant",
                    buckets=DEFAULT_BUCKETS,
                ).observe(max(self._clock() - started, 0.0))
        self.trace.granted(
            event.tid, event.rid, event.mode.name, event.immediate
        )

    def _on_blocked(self, event: Blocked) -> None:
        kind = "conversion" if event.conversion else "queue"
        self.registry.counter(
            "repro_lock_blocks_total",
            labels={"kind": kind},
            help="blocked lock requests by wait kind",
        ).inc()
        self.registry.counter(
            "repro_resource_blocks_total",
            labels={"rid": event.rid},
            help="blocked lock requests per resource (contention "
            "hot spots)",
        ).inc()
        self._blocked_since.setdefault(
            event.tid, (self._clock(), event.mode.name, kind)
        )
        self.trace.blocked(
            event.tid, event.rid, event.mode.name, event.conversion
        )

    def _on_aborted(self, event: Aborted) -> None:
        self.registry.counter(
            "repro_txn_victims_total",
            help="transactions aborted by deadlock resolution",
        ).inc()
        self._blocked_since.pop(event.tid, None)
        self.trace.aborted(event.tid)

    def _on_repositioned(self, event: Repositioned) -> None:
        self.registry.counter(
            "repro_tdr2_repositions_total",
            help="queue repositionings performed by TDR-2",
        ).inc()
        self.registry.counter(
            "repro_tdr2_delayed_requests_total",
            help="requests moved behind the AV prefix by TDR-2",
        ).inc(len(event.delayed))

    # -- detector ----------------------------------------------------------

    def detection(self, result, duration: float) -> None:
        """One detection pass: ``result`` is a
        :class:`~repro.core.detection.DetectionResult`, ``duration`` its
        wall-clock cost in seconds."""
        if not self.enabled:
            return
        reg = self.registry
        stats = result.stats
        reg.counter(
            "repro_detector_passes_total", help="detection passes run"
        ).inc()
        reg.counter(
            "repro_detector_cycles_found_total",
            help="deadlock cycles found (the paper's c')",
        ).inc(stats.cycles_found)
        reg.counter(
            "repro_detector_edges_examined_total",
            help="edges examined by Step-2 walks",
        ).inc(stats.edges_examined)
        reg.counter(
            "repro_detector_tdr1_total", help="cycles resolved by abort"
        ).inc(stats.tdr1_applied)
        reg.counter(
            "repro_detector_tdr2_total",
            help="cycles resolved by queue repositioning",
        ).inc(stats.tdr2_applied)
        if result.deadlock_found:
            reg.counter(
                "repro_detector_deadlock_passes_total",
                help="passes that found at least one cycle",
            ).inc()
            if result.abort_free:
                reg.counter(
                    "repro_detector_abort_free_passes_total",
                    help="deadlock passes resolved without any abort",
                ).inc()
        reg.histogram(
            "repro_detector_pass_seconds",
            help="wall-clock duration of one detection pass",
            buckets=DURATION_BUCKETS,
        ).observe(duration)
        reg.histogram(
            "repro_detector_graph_transactions",
            help="H/W-TWBG size (transactions) per pass",
            buckets=COUNT_BUCKETS,
        ).observe(stats.transactions)
        reg.histogram(
            "repro_detector_cycles_per_pass",
            help="cycles found per pass",
            buckets=COUNT_BUCKETS,
        ).observe(stats.cycles_found)
        trrps = reg.histogram(
            "repro_detector_trrps_per_cycle",
            help="TRRP junctions per resolved cycle",
            buckets=COUNT_BUCKETS,
        )
        for resolution in result.resolutions:
            trrps.observe(
                sum(
                    1
                    for candidate in resolution.candidates
                    if isinstance(candidate, AbortCandidate)
                )
            )
        reg.gauge(
            "repro_detector_last_pass_seconds",
            help="duration of the most recent pass",
        ).set(duration)
        reg.gauge(
            "repro_detector_last_cycles",
            help="cycles found by the most recent pass",
        ).set(stats.cycles_found)
        reg.gauge(
            "repro_detector_last_graph_transactions",
            help="graph size of the most recent pass",
        ).set(stats.transactions)
        reg.gauge(
            "repro_detector_last_run",
            help="virtual-clock time of the most recent pass",
        ).set(self._clock())
        sharding = getattr(result, "sharding", None)
        if sharding is not None:
            self._detection_sharding(sharding)

    def _detection_sharding(self, sharding) -> None:
        """Shard-level figures of one cross-shard pass (a
        :class:`~repro.lockmgr.sharded.ShardedPass`)."""
        reg = self.registry
        for index, seconds in enumerate(sharding.snapshot_seconds):
            reg.histogram(
                "repro_shard_snapshot_seconds",
                labels={"shard": str(index)},
                help="time one shard's mutex was held for its snapshot",
                buckets=DURATION_BUCKETS,
            ).observe(seconds)
        reg.counter(
            "repro_detector_cross_shard_cycles_total",
            help="resolved cycles whose resources span multiple shards",
        ).inc(sharding.cross_shard_cycles)
        stale = sharding.stale_victims + sharding.stale_repositions
        reg.counter(
            "repro_detector_stale_resolutions_total",
            help="staged resolutions dropped because the live shard "
            "state moved on between snapshot and resolution",
        ).inc(stale)
        reg.gauge(
            "repro_detector_last_epoch_drift",
            help="shards mutated between snapshot and resolution in "
            "the most recent pass",
        ).set(sharding.epoch_drift)


def _mode_name(mode) -> str:
    return mode.name if hasattr(mode, "name") else str(mode)
