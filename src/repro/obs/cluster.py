"""Cluster-wide metrics aggregation and the single scrape point.

A worker fleet exposes one ``metrics`` wire op per process; operators
want *one* Prometheus endpoint.  This module merges per-worker registry
snapshots (the JSON side of :meth:`MetricsRegistry.snapshot
<repro.obs.metrics.MetricsRegistry.snapshot>`) into one aggregated
snapshot:

* **counters** — summed across workers per ``(name, labels)`` series
  (the cluster-wide total an alerting rule wants);
* **histograms** — bucket counts merged element-wise per series when
  the bucket bounds agree (sum/count added, min/max combined), so the
  aggregated quantiles stay rank-faithful; mismatched bounds fall back
  to per-worker series labeled ``worker="i"``;
* **gauges** — inherently per-process (open sessions, parked waiters),
  so every sample keeps its identity under a ``worker="i"`` label.

:func:`render_snapshot` turns any snapshot dict back into Prometheus
text exposition (0.0.4 — the same dialect
:func:`~repro.obs.metrics.parse_exposition` reads), and
:class:`MetricsExporter` serves it over plain stdlib HTTP for
``serve --metrics-port``.
"""

from __future__ import annotations

import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional, Tuple

from .metrics import (
    LabelItems,
    _format_value,
    _render_labels,
    bucket_quantile,
)

__all__ = [
    "merge_metrics_snapshots",
    "render_snapshot",
    "MetricsExporter",
]


def _series_key(entry: dict) -> Tuple[str, LabelItems]:
    labels = entry.get("labels") or {}
    return (
        str(entry.get("name")),
        tuple(sorted((str(k), str(v)) for k, v in labels.items())),
    )


def _with_worker(entry: dict, worker: int) -> dict:
    labeled = dict(entry)
    labels = dict(entry.get("labels") or {})
    labels["worker"] = str(worker)
    labeled["labels"] = labels
    return labeled


def merge_metrics_snapshots(
    snapshots: List[Optional[dict]],
) -> Dict[str, List[dict]]:
    """Merge index-aligned worker registry snapshots into one (see
    module docstring).  ``None`` marks an unreachable worker — its
    series are simply absent this scrape."""
    counters: Dict[Tuple[str, LabelItems], dict] = {}
    histograms: Dict[Tuple[str, LabelItems], dict] = {}
    gauges: List[dict] = []
    for worker, snapshot in enumerate(snapshots):
        if not snapshot:
            continue
        for entry in snapshot.get("counters", ()):
            key = _series_key(entry)
            merged = counters.get(key)
            if merged is None:
                merged = dict(entry, labels=dict(entry.get("labels") or {}))
                merged["value"] = 0.0
                counters[key] = merged
            merged["value"] += float(entry.get("value", 0.0))
        for entry in snapshot.get("gauges", ()):
            gauges.append(_with_worker(entry, worker))
        for entry in snapshot.get("histograms", ()):
            key = _series_key(entry)
            merged = histograms.get(key)
            buckets = list(entry.get("buckets") or ())
            counts = [float(c) for c in entry.get("counts") or ()]
            if merged is not None and merged["buckets"] != buckets:
                # Bound mismatch: keep this worker's series apart
                # rather than merging apples with oranges.
                histograms[_series_key(_with_worker(entry, worker))] = (
                    _merge_histogram_entry(None, entry, worker=worker)
                )
                continue
            histograms[key] = _merge_histogram_entry(merged, entry)
    merged_histograms = []
    for entry in histograms.values():
        entry = dict(entry)
        max_observed = entry.get("max")
        for q, field in ((0.50, "p50"), (0.95, "p95"), (0.99, "p99")):
            entry[field] = bucket_quantile(
                entry["buckets"], entry["counts"], q, max_observed
            )
        merged_histograms.append(entry)
    return {
        "counters": list(counters.values()),
        "gauges": gauges,
        "histograms": merged_histograms,
    }


def _merge_histogram_entry(
    merged: Optional[dict], entry: dict, worker: Optional[int] = None
) -> dict:
    if worker is not None:
        entry = _with_worker(entry, worker)
    if merged is None:
        merged = {
            "name": entry.get("name"),
            "labels": dict(entry.get("labels") or {}),
            "buckets": list(entry.get("buckets") or ()),
            "counts": [0.0] * len(entry.get("counts") or ()),
            "count": 0,
            "sum": 0.0,
            "min": None,
            "max": None,
        }
    counts = [float(c) for c in entry.get("counts") or ()]
    if len(merged["counts"]) < len(counts):
        merged["counts"].extend(
            0.0 for _ in range(len(counts) - len(merged["counts"]))
        )
    for index, count in enumerate(counts):
        merged["counts"][index] += count
    merged["count"] += entry.get("count") or 0
    merged["sum"] += entry.get("sum") or 0.0
    for field, pick in (("min", min), ("max", max)):
        value = entry.get(field)
        if value is None:
            continue
        merged[field] = (
            value if merged[field] is None else pick(merged[field], value)
        )
    return merged


def render_snapshot(snapshot: Dict[str, List[dict]]) -> str:
    """Prometheus text exposition (0.0.4) from a snapshot dict — the
    aggregated twin of :meth:`MetricsRegistry.render
    <repro.obs.metrics.MetricsRegistry.render>`, parseable by
    :func:`~repro.obs.metrics.parse_exposition`."""
    lines: List[str] = []
    typed: set = set()

    def type_line(name: str, kind: str) -> None:
        if name not in typed:
            typed.add(name)
            lines.append("# TYPE {} {}".format(name, kind))

    for kind in ("counter", "gauge"):
        for entry in snapshot.get(kind + "s", ()):
            name = str(entry.get("name"))
            items = tuple(
                sorted(
                    (str(k), str(v))
                    for k, v in (entry.get("labels") or {}).items()
                )
            )
            type_line(name, kind)
            lines.append(
                "{}{} {}".format(
                    name,
                    _render_labels(items),
                    _format_value(float(entry.get("value", 0.0))),
                )
            )
    for entry in snapshot.get("histograms", ()):
        name = str(entry.get("name"))
        items = tuple(
            sorted(
                (str(k), str(v))
                for k, v in (entry.get("labels") or {}).items()
            )
        )
        type_line(name, "histogram")
        cumulative = 0.0
        for bound, count in zip(
            list(entry.get("buckets") or ()) + [math.inf],
            entry.get("counts") or (),
        ):
            cumulative += count
            lines.append(
                "{}_bucket{} {}".format(
                    name,
                    _render_labels(
                        items, 'le="{}"'.format(_format_value(bound))
                    ),
                    _format_value(cumulative),
                )
            )
        lines.append(
            "{}_sum{} {}".format(
                name, _render_labels(items),
                _format_value(float(entry.get("sum") or 0.0)),
            )
        )
        lines.append(
            "{}_count{} {}".format(
                name, _render_labels(items),
                _format_value(float(entry.get("count") or 0)),
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsExporter:
    """A minimal stdlib HTTP scrape point.

    ``render_fn`` is called per request and must return the exposition
    text; exceptions answer 500 so a flapping worker never kills the
    endpoint.  ``port=0`` binds an ephemeral port (read it back from
    :attr:`port` after :meth:`start`)."""

    def __init__(
        self,
        render_fn: Callable[[], str],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.render_fn = render_fn
        self.host = host
        self.port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "MetricsExporter":
        render_fn = self.render_fn

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib casing
                try:
                    body = render_fn().encode("utf-8")
                except Exception as exc:  # never kill the endpoint
                    message = "scrape failed: {}\n".format(exc)
                    self.send_response(500)
                    self.send_header("Content-Type", "text/plain")
                    self.end_headers()
                    self.wfile.write(message.encode("utf-8"))
                    return
                self.send_response(200)
                self.send_header(
                    "Content-Type",
                    "text/plain; version=0.0.4; charset=utf-8",
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-scrape
                pass

        self._server = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-exporter",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
