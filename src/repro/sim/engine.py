"""A minimal discrete-event simulation engine.

Events are ``(time, sequence, callback)`` entries in a heap; the engine
pops them in time order and invokes the callbacks, which may schedule
further events.  The sequence number makes simultaneous events fire in
scheduling order, keeping every run fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple


class Engine:
    """Event calendar with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self.now = 0.0
        self._running = False
        self._cancelled: set = set()

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> Tuple[float, int]:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        Returns an opaque handle usable with :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError("delay must be non-negative, got {}".format(delay))
        self._sequence += 1
        entry = (self.now + delay, self._sequence, callback)
        heapq.heappush(self._queue, entry)
        return (entry[0], entry[1])

    def cancel(self, handle: Tuple[float, int]) -> None:
        """Cancel a scheduled event (lazy: the entry is tombstoned)."""
        self._cancelled.add(handle)

    def run(self, until: Optional[float] = None) -> float:
        """Dispatch events until the calendar drains or the clock would
        pass ``until``.  Returns the final clock value."""
        cancelled = self._cancelled
        self._running = True
        while self._queue:
            time, sequence, callback = self._queue[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._queue)
            if (time, sequence) in cancelled:
                cancelled.discard((time, sequence))
                continue
            self.now = time
            callback()
        if until is not None and self.now < until:
            self.now = until
        self._running = False
        return self.now

    @property
    def pending(self) -> int:
        return len(self._queue)
