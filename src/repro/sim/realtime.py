"""A real-time closed-loop harness over any *blocking* lock manager.

The discrete-event simulator (:mod:`repro.sim.engine`) owns its own
clock; this harness instead drives real worker threads against a real
manager — anything with the
:class:`~repro.lockmgr.concurrent.ConcurrentLockManager` surface
(``acquire(tid, rid, mode, timeout)`` / ``commit`` / ``abort`` raising
:class:`~repro.core.errors.TransactionAborted` on victimization).  The
manager arrives through a *factory*, so the identical workload runs
against the embedded thread-safe manager or a
:class:`~repro.service.client.RemoteLockManager` pointed at a lock
server across the network — the apples-to-apples loop the service
benchmark needs.

Each worker runs ``txns`` transaction programs back to back (no think
time — a saturation load); a deadlock victim restarts its program under
a fresh transaction id, exactly like the simulator's restart semantics.
Deadlock resolution is the *manager's* job: hand the factory a manager
with a continuous or periodic detector.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.errors import TransactionAborted
from .workload import WorkloadGenerator, WorkloadSpec


@dataclass
class RealtimeMetrics:
    """What a closed-loop run measured (wall-clock, not virtual time)."""

    commits: int = 0
    restarts: int = 0
    wait_timeouts: int = 0
    lock_calls: int = 0
    wall_time: float = 0.0
    errors: List[str] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Committed transactions per wall-clock second."""
        return self.commits / self.wall_time if self.wall_time else 0.0

    def summary(self) -> Dict[str, float]:
        return {
            "commits": self.commits,
            "restarts": self.restarts,
            "wait_timeouts": self.wait_timeouts,
            "lock_calls": self.lock_calls,
            "wall_time": round(self.wall_time, 3),
            "throughput": round(self.throughput, 1),
        }


def run_realtime(
    manager_factory: Callable[[], object],
    spec: Optional[WorkloadSpec] = None,
    workers: int = 4,
    txns_per_worker: int = 5,
    seed: int = 0,
    lock_timeout: float = 0.5,
    max_restarts: int = 100,
    registry=None,
) -> RealtimeMetrics:
    """Drive ``workers`` threads of generated transactions through one
    manager built by ``manager_factory``; returns the metrics.

    The factory is called once and the instance shared — both
    ``ConcurrentLockManager`` and ``RemoteLockManager`` are thread-safe.
    It is closed (when it has a ``close``) before returning.

    With a :class:`~repro.obs.metrics.MetricsRegistry` passed as
    ``registry``, every ``acquire`` is timed into the client-side
    histogram ``repro_client_acquire_seconds`` (labelled by mode and
    outcome) and the run's counters are mirrored under
    ``repro_client_*_total``.
    """
    spec = spec or WorkloadSpec()
    metrics = RealtimeMetrics()
    metrics_lock = threading.Lock()
    tids = itertools.count(1)
    manager = manager_factory()

    def observe_acquire(mode, outcome: str, elapsed: float) -> None:
        if registry is None:
            return
        registry.histogram(
            "repro_client_acquire_seconds",
            labels={"mode": mode.name, "outcome": outcome},
            help="client-observed acquire latency",
        ).observe(elapsed)

    def timed_acquire(tid: int, access) -> bool:
        started = time.perf_counter()
        try:
            granted = manager.acquire(
                tid, access.rid, access.mode, timeout=lock_timeout
            )
        except TransactionAborted:
            observe_acquire(
                access.mode, "aborted", time.perf_counter() - started
            )
            raise
        observe_acquire(
            access.mode,
            "granted" if granted else "timeout",
            time.perf_counter() - started,
        )
        return granted

    def run_program(program) -> None:
        for attempt in range(max_restarts):
            tid = next(tids)
            try:
                for access in program.accesses:
                    while True:
                        with metrics_lock:
                            metrics.lock_calls += 1
                        if timed_acquire(tid, access):
                            break
                        with metrics_lock:
                            metrics.wait_timeouts += 1
                manager.commit(tid)
            except TransactionAborted:
                with metrics_lock:
                    metrics.restarts += 1
                continue  # re-run the same program, fresh tid
            with metrics_lock:
                metrics.commits += 1
            return
        raise RuntimeError(
            "transaction program still aborting after {} "
            "restarts".format(max_restarts)
        )

    def worker(index: int) -> None:
        generator = WorkloadGenerator(spec, seed=seed + index)
        try:
            for _ in range(txns_per_worker):
                run_program(generator.next_program())
        except Exception as exc:  # surfaced to the caller
            with metrics_lock:
                metrics.errors.append(repr(exc))

    threads = [
        threading.Thread(
            target=worker, args=(index,), name="realtime-{}".format(index)
        )
        for index in range(workers)
    ]
    started = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    metrics.wall_time = time.monotonic() - started
    if hasattr(manager, "close"):
        manager.close()
    if registry is not None:
        for name, value in (
            ("commits", metrics.commits),
            ("restarts", metrics.restarts),
            ("wait_timeouts", metrics.wait_timeouts),
            ("lock_calls", metrics.lock_calls),
        ):
            registry.counter(
                "repro_client_{}_total".format(name),
                help="closed-loop client counter: " + name,
            ).inc(value)
    if metrics.errors:
        raise RuntimeError(
            "realtime workers failed: {}".format("; ".join(metrics.errors))
        )
    return metrics
