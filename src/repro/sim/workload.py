"""Synthetic workload generation for the comparative experiments.

The paper evaluates qualitatively; to turn its claims into measurements
we use a closed-system workload in the style of Agrawal, Carey and
Livny's concurrency-control performance model (the paper's reference
[3]): a fixed number of terminals, each running transactions
back-to-back with think time between them; each transaction touches a
random set of resources, a fraction of which live in a small hot spot;
each access is a read or a write, and — because this paper is about
lock *conversions* — a configurable fraction of reads later upgrade to
writes on the same resource (the ``IS/IX→SIX/X`` ladder that makes
H/W-TWBG's holder-list edges appear).

A generated transaction is a list of :class:`Access` steps; re-running a
program after a deadlock restart replays exactly the same accesses, as a
restarted transaction would re-execute the same code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..core.modes import LockMode


@dataclass(frozen=True)
class Access:
    """One step of a transaction program: lock ``rid`` in ``mode`` and
    then occupy the CPU/disk for ``work`` time units."""

    rid: str
    mode: LockMode
    work: float


@dataclass
class WorkloadSpec:
    """Knobs of the synthetic workload.

    ``upgrade_fraction`` is the probability that a read access is later
    followed by a write of the same resource — issued as a separate
    access, which the scheduler treats as a lock conversion.  With
    ``use_intents`` the workload requests record locks in the intent
    style (IS/IX before S/X on a second-level resource), exercising the
    full five-mode matrix; without it only S/X appear, matching the
    restricted models of the Agrawal/Jiang/Elmagarmid baselines.
    """

    resources: int = 64
    hotspot_resources: int = 8
    hotspot_probability: float = 0.6
    min_size: int = 3
    max_size: int = 10
    write_fraction: float = 0.4
    upgrade_fraction: float = 0.25
    use_intents: bool = False
    intent_tables: int = 4
    mean_work: float = 1.0
    think_time: float = 2.0
    restart_delay: float = 1.0

    def validate(self) -> None:
        if not 0 < self.hotspot_resources <= self.resources:
            raise ValueError("hotspot must be a non-empty subset")
        if self.min_size < 1 or self.max_size < self.min_size:
            raise ValueError("bad transaction size bounds")
        for name in (
            "hotspot_probability",
            "write_fraction",
            "upgrade_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError("{} must be in [0, 1]".format(name))


@dataclass
class Program:
    """A complete transaction program (re-runnable after restarts)."""

    accesses: List[Access] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.accesses)

    def total_work(self) -> float:
        return sum(step.work for step in self.accesses)


def low_contention() -> WorkloadSpec:
    """Many resources, cool hot spot, few writes: deadlocks are rare —
    the regime where detection cost dominates and long periods win."""
    return WorkloadSpec(
        resources=128,
        hotspot_resources=16,
        hotspot_probability=0.3,
        min_size=2,
        max_size=5,
        write_fraction=0.2,
        upgrade_fraction=0.05,
    )


def high_contention() -> WorkloadSpec:
    """Small hot set, write-heavy: deadlocks are constant — the regime
    where detection latency dominates and short periods/continuous win."""
    return WorkloadSpec(
        resources=24,
        hotspot_resources=4,
        hotspot_probability=0.7,
        min_size=3,
        max_size=8,
        write_fraction=0.5,
        upgrade_fraction=0.2,
    )


def conversion_heavy() -> WorkloadSpec:
    """Read-then-upgrade dominated: the S→X ladder that exercises UPR,
    Observation 3.1(3) deadlocks and TDR-2."""
    return WorkloadSpec(
        resources=32,
        hotspot_resources=6,
        min_size=2,
        max_size=6,
        write_fraction=0.15,
        upgrade_fraction=0.6,
    )


def five_mode() -> WorkloadSpec:
    """Intent locks on shared parents plus record S/X and upgrades: all
    five modes in play (the paper's full matrix)."""
    return WorkloadSpec(
        resources=48,
        hotspot_resources=8,
        min_size=2,
        max_size=6,
        write_fraction=0.35,
        upgrade_fraction=0.25,
        use_intents=True,
        intent_tables=4,
    )


#: Named workload presets for the CLI and experiment scripts.
PRESETS = {
    "low-contention": low_contention,
    "high-contention": high_contention,
    "conversion-heavy": conversion_heavy,
    "five-mode": five_mode,
}


class WorkloadGenerator:
    """Seeded generator of transaction programs."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        spec.validate()
        self.spec = spec
        self._random = random.Random(seed)

    def _pick_resource(self) -> int:
        spec = self.spec
        if self._random.random() < spec.hotspot_probability:
            return self._random.randrange(spec.hotspot_resources)
        return self._random.randrange(
            spec.hotspot_resources, max(spec.resources, spec.hotspot_resources + 1)
        )

    def _work(self) -> float:
        # Exponentially distributed service demand, bounded away from 0.
        return max(self._random.expovariate(1.0 / self.spec.mean_work), 0.05)

    def next_program(self) -> Program:
        """Generate one transaction program."""
        spec = self.spec
        size = self._random.randint(spec.min_size, spec.max_size)
        chosen: List[int] = []
        seen = set()
        while len(chosen) < size:
            index = self._pick_resource()
            if index not in seen:
                seen.add(index)
                chosen.append(index)

        accesses: List[Access] = []
        upgrades: List[List[Access]] = []
        for index in chosen:
            rid = "R{}".format(index)
            table = "T{}".format(index % spec.intent_tables)
            is_write = self._random.random() < spec.write_fraction
            if spec.use_intents:
                intent = LockMode.IX if is_write else LockMode.IS
                accesses.append(Access(table, intent, 0.0))
            mode = LockMode.X if is_write else LockMode.S
            accesses.append(Access(rid, mode, self._work()))
            if not is_write and self._random.random() < spec.upgrade_fraction:
                steps = []
                if spec.use_intents:
                    # The table intent must be upgraded too (IS -> IX),
                    # one more conversion for the matrix to chew on.
                    steps.append(Access(table, LockMode.IX, 0.0))
                steps.append(Access(rid, LockMode.X, self._work()))
                upgrades.append(steps)
        # Upgrades run at the end of the transaction — re-requests of
        # resources already held in S, i.e. lock conversions (the classic
        # read-validate-then-update pattern).  Shuffling keeps the
        # conversion order independent of the read order.
        self._random.shuffle(upgrades)
        for steps in upgrades:
            accesses.extend(steps)
        return Program(accesses=accesses)

    def think_time(self) -> float:
        return self._random.expovariate(1.0 / self.spec.think_time)

    def restart_delay(self) -> float:
        return self._random.expovariate(1.0 / self.spec.restart_delay)
