"""Discrete-event transaction-processing simulator and workloads."""

from .engine import Engine
from .metrics import Metrics
from .realtime import RealtimeMetrics, run_realtime
from .runner import (
    RunResult,
    aggregate,
    compare_strategies,
    run_once,
    sweep_period,
)
from .system import SimulatedSystem, Terminal
from .workload import (
    Access,
    PRESETS,
    Program,
    WorkloadGenerator,
    WorkloadSpec,
    conversion_heavy,
    five_mode,
    high_contention,
    low_contention,
)

__all__ = [
    "Access",
    "PRESETS",
    "Engine",
    "Metrics",
    "Program",
    "RealtimeMetrics",
    "RunResult",
    "SimulatedSystem",
    "Terminal",
    "WorkloadGenerator",
    "WorkloadSpec",
    "aggregate",
    "conversion_heavy",
    "five_mode",
    "high_contention",
    "low_contention",
    "compare_strategies",
    "run_once",
    "run_realtime",
    "sweep_period",
]
