"""Experiment runner: strategy comparisons and parameter sweeps.

Benchmarks and examples funnel through these helpers so every experiment
is one call: identical workload spec, seed and duration per strategy,
metrics out, text tables rendered by :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.base import Strategy
from .metrics import Metrics
from .system import SimulatedSystem
from .workload import WorkloadSpec

#: Factory producing a fresh strategy per run (strategies keep state).
StrategyFactory = Callable[[], Strategy]


@dataclass
class RunResult:
    """One (strategy, configuration) simulation outcome."""

    strategy: str
    metrics: Metrics
    seed: int
    config: Dict[str, object] = field(default_factory=dict)


def run_once(
    spec: WorkloadSpec,
    strategy: Strategy,
    duration: float = 500.0,
    terminals: int = 8,
    seed: int = 0,
    period: Optional[float] = 10.0,
    oracle: bool = True,
) -> RunResult:
    """Simulate one strategy on one workload."""
    system = SimulatedSystem(
        spec,
        strategy,
        terminals=terminals,
        seed=seed,
        period=period,
        oracle=oracle,
    )
    metrics = system.run(duration)
    return RunResult(
        strategy=strategy.name,
        metrics=metrics,
        seed=seed,
        config={"terminals": terminals, "period": period},
    )


def compare_strategies(
    spec: WorkloadSpec,
    factories: Sequence[StrategyFactory],
    duration: float = 500.0,
    terminals: int = 8,
    seeds: Sequence[int] = (0,),
    period: Optional[float] = 10.0,
    oracle: bool = True,
) -> List[RunResult]:
    """Run every strategy on identical workloads (same seeds) and return
    one result per (strategy, seed)."""
    results: List[RunResult] = []
    for factory in factories:
        for seed in seeds:
            strategy = factory()
            results.append(
                run_once(
                    spec,
                    strategy,
                    duration=duration,
                    terminals=terminals,
                    seed=seed,
                    period=period,
                    oracle=oracle,
                )
            )
    return results


def sweep_period(
    spec: WorkloadSpec,
    factory: StrategyFactory,
    periods: Sequence[float],
    duration: float = 500.0,
    terminals: int = 8,
    seed: int = 0,
) -> List[RunResult]:
    """Experiment A3: the detection-interval trade-off for a periodic
    strategy — larger periods mean fewer passes but longer-lived
    deadlocks."""
    results: List[RunResult] = []
    for period in periods:
        result = run_once(
            spec,
            factory(),
            duration=duration,
            terminals=terminals,
            seed=seed,
            period=period,
        )
        result.config["period"] = period
        results.append(result)
    return results


def aggregate_stats(
    results: Sequence[RunResult],
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Mean, standard deviation and range per metric per strategy —
    for multi-seed experiments that need error bars.

    ``aggregate_stats(rs)["park-periodic"]["commits"]`` yields
    ``{"mean": ..., "std": ..., "min": ..., "max": ...}``.
    """
    import math

    grouped: Dict[str, List[Metrics]] = {}
    for result in results:
        grouped.setdefault(result.strategy, []).append(result.metrics)
    stats: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, metrics_list in grouped.items():
        keys = metrics_list[0].summary().keys()
        stats[name] = {}
        for key in keys:
            values = [m.summary()[key] for m in metrics_list]
            mean = sum(values) / len(values)
            variance = sum((v - mean) ** 2 for v in values) / len(values)
            stats[name][key] = {
                "mean": mean,
                "std": math.sqrt(variance),
                "min": min(values),
                "max": max(values),
            }
    return stats


def aggregate(results: Sequence[RunResult]) -> Dict[str, Dict[str, float]]:
    """Average the metric summaries of multi-seed runs per strategy."""
    grouped: Dict[str, List[Metrics]] = {}
    for result in results:
        grouped.setdefault(result.strategy, []).append(result.metrics)
    averaged: Dict[str, Dict[str, float]] = {}
    for name, metrics_list in grouped.items():
        keys = metrics_list[0].summary().keys()
        averaged[name] = {
            key: sum(m.summary()[key] for m in metrics_list)
            / len(metrics_list)
            for key in keys
        }
    return averaged
