"""Metrics collected by the simulator.

Everything the comparative experiments report comes out of this object:
throughput and response time (the classic performance view), abort and
restart counts with wasted work (the victim-policy view), deadlock
latency (time deadlock sat unresolved — the detection-delay view of
experiment X1) and detector effort counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class Metrics:
    """Counters for one simulation run."""

    duration: float = 0.0
    commits: int = 0
    deadlock_aborts: int = 0
    prevention_aborts: int = 0
    timeout_aborts: int = 0
    restarts: int = 0
    useful_work: float = 0.0
    wasted_work: float = 0.0
    response_times: List[float] = field(default_factory=list)
    blocked_time: float = 0.0

    deadlocks_resolved: int = 0
    abort_free_resolutions: int = 0
    repositions: int = 0

    #: Ground-truth deadlock persistence (the oracle's view).
    deadlock_episodes: int = 0
    deadlock_latency_total: float = 0.0

    detection_passes: int = 0
    block_events: int = 0
    lock_requests: int = 0

    @property
    def throughput(self) -> float:
        """Committed transactions per time unit."""
        return self.commits / self.duration if self.duration else 0.0

    @property
    def total_aborts(self) -> int:
        return (
            self.deadlock_aborts
            + self.prevention_aborts
            + self.timeout_aborts
        )

    @property
    def mean_response_time(self) -> float:
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def response_percentile(self, fraction: float) -> float:
        """Response-time percentile (``fraction`` in [0, 1]; nearest-rank
        on the sorted commit latencies).  Tail latency is where deadlock
        stalls show up first — a mean can hide a minute-long p99."""
        if not self.response_times:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        ordered = sorted(self.response_times)
        index = min(
            int(fraction * len(ordered)), len(ordered) - 1
        )
        return ordered[index]

    @property
    def p95_response_time(self) -> float:
        return self.response_percentile(0.95)

    @property
    def max_response_time(self) -> float:
        return max(self.response_times) if self.response_times else 0.0

    @property
    def mean_deadlock_latency(self) -> float:
        """Average time a deadlock existed before some scheme action (or
        a fortunate abort) removed it."""
        if not self.deadlock_episodes:
            return 0.0
        return self.deadlock_latency_total / self.deadlock_episodes

    @property
    def wasted_fraction(self) -> float:
        total = self.useful_work + self.wasted_work
        return self.wasted_work / total if total else 0.0

    def summary(self) -> dict:
        """Flat dict for report tables."""
        return {
            "commits": self.commits,
            "throughput": round(self.throughput, 4),
            "aborts": self.total_aborts,
            "deadlock_aborts": self.deadlock_aborts,
            "restarts": self.restarts,
            "wasted_fraction": round(self.wasted_fraction, 4),
            "mean_response": round(self.mean_response_time, 3),
            "p95_response": round(self.p95_response_time, 3),
            "deadlocks_resolved": self.deadlocks_resolved,
            "abort_free": self.abort_free_resolutions,
            "deadlock_episodes": self.deadlock_episodes,
            "mean_deadlock_latency": round(self.mean_deadlock_latency, 3),
            "detection_passes": self.detection_passes,
        }
