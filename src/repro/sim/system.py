"""The simulated transaction-processing system.

A closed system of ``terminals`` (ref. [3]'s model): each terminal runs
one transaction at a time against a shared Section-3 lock manager,
thinks, then starts the next.  A deadlock-handling
:class:`~repro.baselines.base.Strategy` is wired into the block, tick
and periodic hooks; its victims are restarted with the same program
after a restart delay, like a real DBMS re-running the application's
transaction.

An optional ground-truth **oracle** (the full wait-for graph) watches
the lock table after every event and accumulates how long deadlocks
persist — that is the detection-latency measurement behind experiment
X1; schemes that look at reduced graphs (Agrawal) or long periods leave
cycles standing measurably longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..baselines.base import Strategy, StrategyOutcome
from ..baselines.jiang import direct_blockers
from ..baselines.wfg import has_deadlock
from ..core.victim import CostTable
from ..lockmgr import scheduler
from ..lockmgr.lock_table import LockTable
from .engine import Engine
from .metrics import Metrics
from .workload import Program, WorkloadGenerator, WorkloadSpec


@dataclass
class Terminal:
    """One closed-loop client."""

    index: int
    program: Optional[Program] = None
    step: int = 0
    tid: Optional[int] = None
    restarts: int = 0
    program_started_at: float = 0.0
    attempt_work: float = 0.0
    blocked_since: Optional[float] = None
    state: str = "thinking"  # thinking | running | blocked | aborted


class SimulatedSystem:
    """Drives terminals, lock manager and strategy through one run."""

    def __init__(
        self,
        spec: WorkloadSpec,
        strategy: Strategy,
        terminals: int = 8,
        seed: int = 0,
        period: Optional[float] = 10.0,
        tick_interval: float = 1.0,
        oracle: bool = True,
        cost_policy=None,
    ) -> None:
        self.spec = spec
        self.strategy = strategy
        self.period = period
        self.tick_interval = tick_interval
        self.oracle = oracle
        self.engine = Engine()
        self.table = LockTable()
        self.costs = CostTable()
        self.metrics = Metrics()
        self.generator = WorkloadGenerator(spec, seed=seed)
        self.terminals = [Terminal(index=i) for i in range(terminals)]
        self._by_tid: Dict[int, Terminal] = {}
        self._next_tid = 1
        self._deadlock_since: Optional[float] = None
        #: ``cost_policy(terminal, now) -> float`` — victim cost of a
        #: terminal's current transaction.  Default: accumulated work + 1
        #: (abort cost proportional to work that would be wasted).
        self._cost_policy = (
            cost_policy
            if cost_policy is not None
            else (lambda terminal, now: 1.0 + terminal.attempt_work)
        )

    def _refresh_cost(self, terminal: Terminal) -> None:
        if terminal.tid is not None:
            self.costs.set_cost(
                terminal.tid, self._cost_policy(terminal, self.engine.now)
            )

    # -- run --------------------------------------------------------------

    def run(self, duration: float = 1000.0) -> Metrics:
        """Simulate ``duration`` time units and return the metrics."""
        for terminal in self.terminals:
            self.engine.schedule(
                self.generator.think_time() * 0.1,
                lambda t=terminal: self._start_transaction(t),
            )
        if self.strategy.periodic and self.period is not None:
            self.engine.schedule(self._next_interval(), self._periodic)
        self.engine.schedule(self.tick_interval, self._tick)
        self.engine.run(until=duration)
        self._close_oracle_episode()
        self.metrics.duration = duration
        return self.metrics

    # -- terminal lifecycle ---------------------------------------------------

    def _start_transaction(self, terminal: Terminal) -> None:
        if terminal.program is None:
            terminal.program = self.generator.next_program()
            terminal.program_started_at = self.engine.now
            terminal.restarts = 0
        terminal.tid = self._next_tid
        self._next_tid += 1
        terminal.step = 0
        terminal.attempt_work = 0.0
        terminal.state = "running"
        self._by_tid[terminal.tid] = terminal
        self._refresh_cost(terminal)
        self._advance(terminal, terminal.tid)

    def _advance(self, terminal: Terminal, tid: int) -> None:
        """Issue the terminal's next access (or commit)."""
        if terminal.tid != tid or terminal.state not in ("running",):
            return  # stale event (the transaction restarted meanwhile)
        if terminal.step >= terminal.program.size:
            self._commit(terminal)
            return
        access = terminal.program.accesses[terminal.step]
        self.metrics.lock_requests += 1
        outcome = scheduler.request(
            self.table, terminal.tid, access.rid, access.mode
        )
        if outcome.granted:
            self._work_phase(terminal, access.work)
            return
        self._blocked(terminal, access)

    def _work_phase(self, terminal: Terminal, work: float) -> None:
        tid = terminal.tid

        def finish() -> None:
            if terminal.tid != tid or terminal.state != "running":
                return
            terminal.attempt_work += work
            self._refresh_cost(terminal)
            terminal.step += 1
            self._advance(terminal, tid)

        self.engine.schedule(work, finish)

    def _blocked(self, terminal: Terminal, access) -> None:
        terminal.state = "blocked"
        terminal.blocked_since = self.engine.now
        self.metrics.block_events += 1

        # Prevention hook: may veto the wait.  The oracle observes the
        # state *after* the veto decision — a wait refused within the
        # same event never stood, so a cycle that exists only in the
        # half-applied state is not a deadlock episode.
        rid = self.table.blocked_at(terminal.tid)
        if rid is not None:
            blockers = sorted(
                direct_blockers(self.table.existing(rid), terminal.tid)
            )
            veto = self.strategy.wait_allowed(
                self.table, terminal.tid, blockers, self.costs, self.engine.now
            )
            if veto:
                for victim in veto:
                    self._abort(victim, kind="prevention")
                self._oracle_check()
                return
        self._oracle_check()

        outcome = self.strategy.on_block(
            self.table, terminal.tid, self.costs, self.engine.now
        )
        self._apply(outcome)

    def _commit(self, terminal: Terminal) -> None:
        tid = terminal.tid
        grants = scheduler.release_all(self.table, tid)
        self.strategy.forget(tid)
        self.costs.forget(tid)
        self._by_tid.pop(tid, None)
        self.metrics.commits += 1
        self.metrics.useful_work += terminal.attempt_work
        self.metrics.response_times.append(
            self.engine.now - terminal.program_started_at
        )
        terminal.program = None
        terminal.tid = None
        terminal.state = "thinking"
        self._wake(grants)
        self._oracle_check()
        self.engine.schedule(
            self.generator.think_time(),
            lambda: self._start_transaction(terminal),
        )

    # -- strategy plumbing ---------------------------------------------------------

    def _apply(self, outcome: StrategyOutcome) -> None:
        self.metrics.deadlocks_resolved += outcome.cycles_found
        if outcome.cycles_found and not outcome.victims:
            self.metrics.abort_free_resolutions += 1
        self.metrics.repositions += len(outcome.repositioned)
        for tid in outcome.victims:
            self._abort(tid, kind="deadlock")
        for tid in outcome.granted:
            self._wake_tid(tid)
        self._oracle_check()

    def _abort(self, tid: int, kind: str) -> None:
        terminal = self._by_tid.pop(tid, None)
        grants = scheduler.release_all(self.table, tid)
        self.strategy.forget(tid)
        self.costs.forget(tid)
        if kind == "deadlock":
            self.metrics.deadlock_aborts += 1
        elif kind == "timeout":
            self.metrics.timeout_aborts += 1
        else:
            self.metrics.prevention_aborts += 1
        if terminal is not None:
            if terminal.blocked_since is not None:
                self.metrics.blocked_time += (
                    self.engine.now - terminal.blocked_since
                )
                terminal.blocked_since = None
            self.metrics.wasted_work += terminal.attempt_work
            self.metrics.restarts += 1
            terminal.restarts += 1
            terminal.tid = None
            terminal.state = "aborted"
            self.engine.schedule(
                self.generator.restart_delay(),
                lambda: self._start_transaction(terminal),
            )
        self._wake(grants)

    def _wake(self, grants) -> None:
        for event in grants:
            self._wake_tid(event.tid)

    def _wake_tid(self, tid: int) -> None:
        terminal = self._by_tid.get(tid)
        if terminal is None or terminal.state != "blocked":
            return
        if self.table.is_blocked(tid):
            return  # woken for one lock but blocked again elsewhere
        terminal.state = "running"
        if terminal.blocked_since is not None:
            self.metrics.blocked_time += (
                self.engine.now - terminal.blocked_since
            )
            terminal.blocked_since = None
        self.strategy.on_grant(tid)
        # Retry the pending access; the lock is held now so the request
        # resolves as an immediate (covered) grant.
        self._advance(terminal, tid)

    def _next_interval(self) -> float:
        """The wait before the next periodic pass — the strategy may
        tune it (adaptive schemes); ``None`` falls back to the fixed
        configured period."""
        interval = self.strategy.next_period(self.period)
        return self.period if interval is None else interval

    def _periodic(self) -> None:
        self.metrics.detection_passes += 1
        outcome = self.strategy.periodic_pass(
            self.table, self.costs, self.engine.now
        )
        self._apply(outcome)
        self._wake_granted_after_pass()
        self.engine.schedule(self._next_interval(), self._periodic)

    def _tick(self) -> None:
        outcome = self.strategy.on_tick(
            self.table, self.costs, self.engine.now
        )
        for tid in outcome.victims:
            self._abort(tid, kind=self.strategy.tick_abort_kind)
        for tid in outcome.granted:
            self._wake_tid(tid)
        self._oracle_check()
        self.engine.schedule(self.tick_interval, self._tick)

    def _wake_granted_after_pass(self) -> None:
        """A periodic pass may have unblocked transactions that were not
        named in the outcome (Step-3 sweeps); wake any terminal whose
        transaction is no longer blocked in the table."""
        for terminal in self.terminals:
            if (
                terminal.state == "blocked"
                and terminal.tid is not None
                and not self.table.is_blocked(terminal.tid)
            ):
                self._wake_tid(terminal.tid)

    # -- oracle ---------------------------------------------------------------------

    def _oracle_check(self) -> None:
        if not self.oracle:
            return
        cyclic = has_deadlock(self.table)
        if cyclic and self._deadlock_since is None:
            self._deadlock_since = self.engine.now
        elif not cyclic and self._deadlock_since is not None:
            self.metrics.deadlock_episodes += 1
            self.metrics.deadlock_latency_total += (
                self.engine.now - self._deadlock_since
            )
            self._deadlock_since = None

    def _close_oracle_episode(self) -> None:
        if self._deadlock_since is not None:
            self.metrics.deadlock_episodes += 1
            self.metrics.deadlock_latency_total += (
                self.engine.now - self._deadlock_since
            )
            self._deadlock_since = None
