"""Multiple granularity locking: resource hierarchy and protocol."""

from .escalation import EscalatingMGL, EscalationStats
from .hierarchy import HierarchyError, ResourceHierarchy
from .protocol import MGLProtocol

__all__ = [
    "EscalatingMGL",
    "EscalationStats",
    "HierarchyError",
    "MGLProtocol",
    "ResourceHierarchy",
]
