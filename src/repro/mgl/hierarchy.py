"""Resource hierarchies for multiple granularity locking.

The paper's model "is upward compatible with the multiple granularity
locking (MGL) protocol in a sense that it integrates without changes into
a system that supports a resource hierarchy" (Section 2).  This module
provides that hierarchy: a rooted tree (or forest) of named resources —
classically database → area → file → record — with the path queries the
MGL protocol needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.errors import ReproError


class HierarchyError(ReproError):
    """Invalid hierarchy construction or lookup."""


class ResourceHierarchy:
    """A forest of resource nodes identified by strings.

    >>> h = ResourceHierarchy()
    >>> h.add("db")
    >>> h.add("table:accounts", parent="db")
    >>> h.add("row:accounts:1", parent="table:accounts")
    >>> h.path_to_root("row:accounts:1")
    ['db', 'table:accounts', 'row:accounts:1']
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}

    def add(self, rid: str, parent: Optional[str] = None) -> None:
        """Register ``rid`` under ``parent`` (None makes it a root).

        Raises :class:`HierarchyError` on duplicates or unknown parents.
        """
        if rid in self._parent:
            raise HierarchyError("resource {!r} already exists".format(rid))
        if parent is not None and parent not in self._parent:
            raise HierarchyError(
                "parent {!r} of {!r} is not registered".format(parent, rid)
            )
        self._parent[rid] = parent
        self._children.setdefault(rid, [])
        if parent is not None:
            self._children[parent].append(rid)

    def add_path(self, path: Iterable[str]) -> None:
        """Register a root-to-leaf chain, skipping already-known nodes."""
        previous: Optional[str] = None
        for rid in path:
            if rid not in self._parent:
                self.add(rid, parent=previous)
            previous = rid

    def parent(self, rid: str) -> Optional[str]:
        try:
            return self._parent[rid]
        except KeyError:
            raise HierarchyError("unknown resource {!r}".format(rid)) from None

    def children(self, rid: str) -> List[str]:
        if rid not in self._children:
            raise HierarchyError("unknown resource {!r}".format(rid))
        return list(self._children[rid])

    def path_to_root(self, rid: str) -> List[str]:
        """Ancestors of ``rid`` from the root down to ``rid`` itself —
        the order MGL acquires intention locks in."""
        path: List[str] = []
        cursor: Optional[str] = rid
        while cursor is not None:
            path.append(cursor)
            cursor = self.parent(cursor)
        path.reverse()
        return path

    def descendants(self, rid: str) -> List[str]:
        """All strict descendants of ``rid`` (preorder)."""
        result: List[str] = []
        stack = list(reversed(self.children(rid)))
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(self._children[node]))
        return result

    def is_leaf(self, rid: str) -> bool:
        return not self.children(rid)

    def __contains__(self, rid: str) -> bool:
        return rid in self._parent

    def __len__(self) -> int:
        return len(self._parent)
