"""Lock escalation for multiple granularity locking.

When a transaction accumulates many fine-grained locks under one parent,
a real lock manager trades them for a single coarse lock: the lock table
shrinks and future requests under that parent become no-ops.  Escalation
is the classic workload for lock *conversions* — the parent's intention
mode (IS/IX) is converted upward to S or SIX/X — which makes it a natural
stress test for the paper's UPR and total-mode machinery, and deadlocks
caused by two transactions escalating against each other are exactly the
Observation-3.1(3) conversion deadlocks H/W-TWBG models.

:class:`EscalationPolicy` watches per-(transaction, parent) child-lock
counts and, past ``threshold``, issues the coarse conversion through the
transaction manager:

* children held in read modes only  → parent ``S``;
* any child held in a write mode    → parent ``X``
  (``SIX`` is not sufficient: it covers reads of the subtree plus
  *further intent* to write, but the already-held child X locks must be
  subsumed, which needs the parent to be exclusive).

Escalation can block like any conversion; the caller sees the usual
blocked/granted outcome and resumes exactly as with plain MGL locking.
After a successful escalation the child locks are logically redundant;
strict 2PL keeps them until commit, but new child requests are answered
by the coarse lock (immediate covered grants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from ..core.modes import LockMode, stronger_or_equal
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from .hierarchy import ResourceHierarchy
from .protocol import MGLProtocol


@dataclass
class EscalationStats:
    """Counters for tests and experiments."""

    attempts: int = 0
    granted: int = 0
    blocked: int = 0


class EscalatingMGL:
    """An MGL front end that escalates past a child-lock threshold."""

    def __init__(
        self,
        hierarchy: ResourceHierarchy,
        transactions: TransactionManager,
        threshold: int = 8,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be at least 1")
        self.mgl = MGLProtocol(hierarchy, transactions)
        self.threshold = threshold
        self.stats = EscalationStats()
        self._child_counts: Dict[Tuple[int, str], int] = {}
        self._escalated: Dict[int, Set[str]] = {}
        self._writes_seen: Dict[Tuple[int, str], bool] = {}

    @property
    def transactions(self) -> TransactionManager:
        return self.mgl.transactions

    @property
    def hierarchy(self) -> ResourceHierarchy:
        return self.mgl.hierarchy

    # -- locking ------------------------------------------------------------

    def lock(self, txn: Transaction, rid: str, mode: LockMode) -> bool:
        """Lock ``rid`` in ``mode``; may escalate the parent first.

        Returns False when blocked (either on the normal MGL path or on
        the escalation conversion); call again after waking, as with
        :meth:`MGLProtocol.lock`.
        """
        parent = self.hierarchy.parent(rid)
        if parent is not None and self._covered(txn, parent, mode):
            # The coarse lock already subsumes this request.
            return True
        if parent is not None and self._should_escalate(txn, parent):
            if not self._escalate(txn, parent):
                return False
            if self._covered(txn, parent, mode):
                return True
        granted = self.mgl.lock(txn, rid, mode)
        if granted and parent is not None:
            key = (txn.tid, parent)
            self._child_counts[key] = self._child_counts.get(key, 0) + 1
            if mode in (LockMode.X, LockMode.IX, LockMode.SIX):
                self._writes_seen[key] = True
        return granted

    def _covered(self, txn: Transaction, parent: str, mode: LockMode) -> bool:
        held = self.transactions.locks.holding(txn.tid).get(
            parent, LockMode.NL
        )
        return held in (LockMode.S, LockMode.X) and stronger_or_equal(
            held, LockMode.S if mode in (LockMode.S, LockMode.IS) else LockMode.X
        )

    def _should_escalate(self, txn: Transaction, parent: str) -> bool:
        key = (txn.tid, parent)
        if parent in self._escalated.get(txn.tid, set()):
            return False
        return self._child_counts.get(key, 0) >= self.threshold

    def _escalate(self, txn: Transaction, parent: str) -> bool:
        """Convert the parent intention lock to a coarse lock."""
        key = (txn.tid, parent)
        target = LockMode.X if self._writes_seen.get(key) else LockMode.S
        self.stats.attempts += 1
        granted = self.mgl.lock(txn, parent, target)
        if granted:
            self.stats.granted += 1
            self._escalated.setdefault(txn.tid, set()).add(parent)
        else:
            self.stats.blocked += 1
        return granted

    # -- lifecycle ------------------------------------------------------------

    def forget(self, tid: int) -> None:
        """Drop the bookkeeping of a finished transaction."""
        self._escalated.pop(tid, None)
        for key in [k for k in self._child_counts if k[0] == tid]:
            del self._child_counts[key]
        for key in [k for k in self._writes_seen if k[0] == tid]:
            del self._writes_seen[key]

    def escalated_parents(self, tid: int) -> Set[str]:
        """Parents this transaction holds coarsely due to escalation."""
        return set(self._escalated.get(tid, set()))
