"""The multiple granularity locking protocol of Gray [10, 11].

To lock a node of the hierarchy in mode ``m``, a transaction must first
hold the required intention mode on every ancestor, root first:

* ``IS`` or ``S`` on a node requires at least ``IS`` on the parent;
* ``IX``, ``SIX`` or ``X`` requires at least ``IX`` on the parent.

:class:`MGLProtocol` performs those acquisitions through the
:class:`~repro.txn.manager.TransactionManager`, one lock at a time — the
sequential model means a transaction that blocks on an ancestor simply
stays blocked there; re-issuing the same :meth:`lock` call after waking
resumes where it stopped, because already-covered modes are immediate
grants under the conversion rule.

The protocol can also *verify* rather than acquire (``auto_intent=False``)
for applications that manage intention locks themselves; a missing
intention lock then raises :class:`ProtocolViolation`.
"""

from __future__ import annotations

from typing import List

from ..core.errors import ProtocolViolation
from ..core.modes import LockMode, required_parent_mode, stronger_or_equal
from ..txn.manager import TransactionManager
from ..txn.transaction import Transaction
from .hierarchy import ResourceHierarchy


class MGLProtocol:
    """Hierarchy-aware locking front end."""

    def __init__(
        self,
        hierarchy: ResourceHierarchy,
        transactions: TransactionManager,
        auto_intent: bool = True,
    ) -> None:
        self.hierarchy = hierarchy
        self.transactions = transactions
        self.auto_intent = auto_intent

    def lock(self, txn: Transaction, rid: str, mode: LockMode) -> bool:
        """Lock ``rid`` in ``mode``, taking (or checking) intention locks
        on all ancestors root-first.  Returns True when every lock on the
        path was granted; False when the transaction blocked somewhere on
        the path (call again after it wakes to resume).
        """
        plan = self.plan(rid, mode)
        for step_rid, step_mode in plan:
            if not self.auto_intent and step_rid != rid:
                self._check_held(txn, step_rid, step_mode)
                continue
            if not self.transactions.lock(txn, step_rid, step_mode):
                return False
        return True

    def plan(self, rid: str, mode: LockMode) -> List[tuple]:
        """The ``(rid, mode)`` acquisition sequence for locking ``rid`` in
        ``mode`` — ancestors root-first with their required intention
        modes, then the target itself.

        >>> # db -> table -> row, locking the row in X:
        >>> # [('db', IX), ('table', IX), ('row', X)]
        """
        path = self.hierarchy.path_to_root(rid)
        ancestor_mode = required_parent_mode(mode)
        steps = [(ancestor, ancestor_mode) for ancestor in path[:-1]]
        steps.append((rid, mode))
        return steps

    def _check_held(
        self, txn: Transaction, rid: str, needed: LockMode
    ) -> None:
        held = self.transactions.locks.holding(txn.tid).get(rid, LockMode.NL)
        if not stronger_or_equal(held, needed):
            raise ProtocolViolation(
                "T{} holds {} on {!r} but the MGL protocol requires at "
                "least {}".format(txn.tid, held.name, rid, needed.name)
            )

    def lock_subtree_exclusive(self, txn: Transaction, rid: str) -> bool:
        """Convenience: X on ``rid`` locks the whole subtree implicitly
        (that is the point of granularity locking); equivalent to
        ``lock(txn, rid, X)``."""
        return self.lock(txn, rid, LockMode.X)

    def reads_subtree(self, txn: Transaction, rid: str) -> bool:
        """Convenience: S on ``rid`` read-locks the whole subtree."""
        return self.lock(txn, rid, LockMode.S)
