"""Victim-cost policies (Section 5's cost-table metrics).

The paper: "There can be several criteria for deciding a cost of each
transaction, for example, number of locks it holds, starting time of it,
the amount of CPU and I/O time which has been consumed and so on.  We
assume that the cost of each transaction is determined by some
combination of the above metrics."

Each policy maps a :class:`~repro.txn.transaction.Transaction` (plus the
current time) to a non-negative float; the
:class:`~repro.txn.manager.TransactionManager` refreshes the detector's
:class:`~repro.core.victim.CostTable` from the chosen policy before every
detection pass.  TDR-2 delay penalties are added by the cost table on top
of the refreshed base (see :meth:`TransactionManager.refresh_costs`).
"""

from __future__ import annotations

from typing import Callable, Sequence

from .transaction import Transaction

#: A cost policy: ``policy(transaction, now) -> float``.
CostPolicy = Callable[[Transaction, float], float]


def unit_cost(txn: Transaction, now: float) -> float:
    """Every abort costs the same — victim selection degenerates to
    tie-breaking (prefer TDR-2, then smaller tid)."""
    return 1.0


def locks_held_cost(txn: Transaction, now: float) -> float:
    """Cost = number of locks currently held (+1 so empty transactions
    are not free).  Aborts the transaction with least acquired state."""
    return float(txn.locks_held) + 1.0


def age_cost(txn: Transaction, now: float) -> float:
    """Cost = time since the transaction started (+1).  Approximates the
    work that would be wasted by an abort; favors wounding the young."""
    return max(now - txn.start_time, 0.0) + 1.0


def work_done_cost(txn: Transaction, now: float) -> float:
    """Cost = accumulated CPU/IO work units (+1)."""
    return txn.work_done + 1.0


def restart_fairness_cost(txn: Transaction, now: float) -> float:
    """Cost grows exponentially with the restart count, protecting
    repeatedly aborted transactions from starvation (live-lock guard for
    TDR-1, analogous to the TDR-2 delay penalty)."""
    return float(2 ** min(txn.restarts, 20))


def combine(policies: Sequence[CostPolicy]) -> CostPolicy:
    """The paper's "some combination of the above metrics": a summed
    composite of several policies."""

    def combined(txn: Transaction, now: float) -> float:
        return sum(policy(txn, now) for policy in policies)

    return combined


#: A sensible production default: locks held + work done + restart guard.
default_cost = combine(
    [locks_held_cost, work_done_cost, restart_fairness_cost]
)
