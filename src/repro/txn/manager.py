"""TransactionManager — transaction lifecycle over the lock manager.

Ties the pieces together for applications:

* ``begin()`` hands out :class:`Transaction` objects with fresh ids;
* ``lock()`` issues requests under the sequential model (one outstanding
  request per transaction) and keeps transaction states in sync with the
  scheduler's grant/block events;
* ``commit()``/``abort()`` end a transaction, releasing all its locks
  (strict 2PL) and waking whoever the release sweep granted;
* ``run_detection()`` refreshes victim costs from the configured cost
  policy and runs one periodic detection-resolution pass, translating
  detector decisions back into transaction aborts and wake-ups.

With ``continuous=True`` the underlying lock manager performs a rooted
deadlock check on every block instead (the companion algorithm); the
manager then folds each check's outcome in right away.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.detection import DetectionResult
from ..core.errors import (
    TransactionAborted,
    UnknownTransactionError,
)
from ..core.modes import LockMode
from ..lockmgr.manager import LockManager
from . import costs as cost_policies
from .costs import CostPolicy
from .transaction import Transaction, TxnState


class TransactionManager:
    """Lifecycle manager for sequential transactions under strict 2PL."""

    def __init__(
        self,
        lock_manager: Optional[LockManager] = None,
        cost_policy: Optional[CostPolicy] = None,
        continuous: bool = False,
    ) -> None:
        self.locks = (
            lock_manager
            if lock_manager is not None
            else LockManager(continuous=continuous)
        )
        self.cost_policy = (
            cost_policy if cost_policy is not None else cost_policies.unit_cost
        )
        self._transactions: Dict[int, Transaction] = {}
        self._next_tid = 1
        self._clock = 0.0

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        """The manager's logical clock (advanced by :meth:`tick` or by
        the simulator driving it)."""
        return self._clock

    def tick(self, delta: float = 1.0) -> float:
        self._clock += delta
        return self._clock

    # -- lifecycle ------------------------------------------------------------

    def begin(self) -> Transaction:
        """Start a new transaction."""
        txn = Transaction(tid=self._next_tid, start_time=self._clock)
        self._next_tid += 1
        self._transactions[txn.tid] = txn
        return txn

    def transaction(self, tid: int) -> Transaction:
        try:
            return self._transactions[tid]
        except KeyError:
            raise UnknownTransactionError(tid) from None

    def active_transactions(self) -> List[Transaction]:
        return [
            txn for txn in self._transactions.values() if not txn.finished
        ]

    # -- locking ---------------------------------------------------------------

    def lock(self, txn: Transaction, rid: str, mode: LockMode) -> bool:
        """Request ``mode`` on ``rid``.  Returns True when granted
        immediately; False when the transaction blocked.

        Raises :class:`TransactionAborted` if a continuous detection pass
        triggered by this very request chose the transaction as victim.
        """
        txn.require_active()
        if self.locks.was_aborted(txn.tid):  # pragma: no cover - defensive
            self._mark_aborted(txn, "deadlock victim")
            raise TransactionAborted(txn.tid)

        if self.locks.continuous:
            self.refresh_costs()
        outcome = self.locks.lock(txn.tid, rid, mode)
        if outcome.granted:
            txn.note_granted()
            return True

        txn.note_blocked(rid, outcome.mode)
        if self.locks.last_detection is not None:
            self._fold_in(self.locks.last_detection)
            if txn.state is TxnState.ABORTED:
                raise TransactionAborted(txn.tid)
        return txn.state is TxnState.ACTIVE

    def work(self, txn: Transaction, amount: float = 1.0) -> None:
        """Account CPU/IO work to the transaction (for cost policies)."""
        txn.work_done += amount

    def commit(self, txn: Transaction) -> List[Transaction]:
        """Commit ``txn``; returns the transactions its release woke."""
        txn.note_commit()
        return self._release_and_wake(txn)

    def abort(self, txn: Transaction, reason: str = "user abort") -> List[Transaction]:
        """Abort ``txn``; returns the transactions its release woke."""
        txn.note_abort(reason)
        return self._release_and_wake(txn)

    def _release_and_wake(self, txn: Transaction) -> List[Transaction]:
        grants = self.locks.finish(txn.tid)
        return [self._wake(event.tid) for event in grants]

    def _wake(self, tid: int) -> Transaction:
        woken = self.transaction(tid)
        woken.note_granted()
        return woken

    # -- deadlock handling ----------------------------------------------------------

    def refresh_costs(self) -> None:
        """Recompute every live transaction's victim cost from the cost
        policy.  TDR-2 delay penalties already accumulated in the cost
        table are preserved by only raising costs, never lowering them
        below the accumulated value."""
        table = self.locks.costs
        for txn in self.active_transactions():
            base = self.cost_policy(txn, self._clock)
            if txn.tid in table:
                table.set_cost(txn.tid, max(base, table.cost(txn.tid)))
            else:
                table.set_cost(txn.tid, base)

    def run_detection(self) -> DetectionResult:
        """One periodic detection-resolution pass (refreshing costs
        first).  Victim transactions transition to ABORTED; granted ones
        wake up."""
        self.refresh_costs()
        result = self.locks.detect()
        self._fold_in(result)
        return result

    def _fold_in(self, result: DetectionResult) -> None:
        for tid in result.aborted:
            txn = self._transactions.get(tid)
            if txn is not None and not txn.finished:
                self._mark_aborted(txn, "deadlock victim")
        for event in result.grants:
            txn = self._transactions.get(event.tid)
            if txn is not None and txn.is_blocked:
                txn.note_granted()

    def _mark_aborted(self, txn: Transaction, reason: str) -> None:
        txn.note_abort(reason)
        # The detector already removed the victim's locks; finish() keeps
        # the lock manager's aborted-set consistent and is a no-op on the
        # lock table.
        self.locks.finish(txn.tid)

    # -- introspection ------------------------------------------------------------------

    def deadlocked(self) -> bool:
        """Theorem 1 check on the live table."""
        return self.locks.deadlocked()

    def __str__(self) -> str:
        lines = [str(txn) for txn in self._transactions.values()]
        lines.append(str(self.locks))
        return "\n".join(lines)
