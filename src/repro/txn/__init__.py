"""Transaction layer: lifecycle objects, cost policies and the
TransactionManager."""

from .costs import (
    CostPolicy,
    age_cost,
    combine,
    default_cost,
    locks_held_cost,
    restart_fairness_cost,
    unit_cost,
    work_done_cost,
)
from .manager import TransactionManager
from .transaction import Transaction, TxnState

__all__ = [
    "CostPolicy",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "age_cost",
    "combine",
    "default_cost",
    "locks_held_cost",
    "restart_fairness_cost",
    "unit_cost",
    "work_done_cost",
]
