"""Transaction objects for the sequential transaction model (Section 2).

A transaction is a sequence of database operations with the ACID
properties, executing under strict two-phase locking: it locks every
resource before accessing it and keeps all locks until it terminates.
It requests **at most one lock at a time** — when a request cannot be
granted the transaction is blocked until the lock is granted or the
transaction is aborted (the paper's Axiom 1 rests on this).

The object carries the bookkeeping the victim-selection cost metrics are
built from: start time, number of locks, accumulated work, restart count.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..core.errors import TransactionStateError
from ..core.modes import LockMode


class TxnState(enum.Enum):
    """Lifecycle states of a transaction."""

    ACTIVE = "active"
    BLOCKED = "blocked"
    COMMITTED = "committed"
    ABORTED = "aborted"

    @property
    def is_terminal(self) -> bool:
        return self in (TxnState.COMMITTED, TxnState.ABORTED)


@dataclass
class Transaction:
    """One transaction's identity and runtime bookkeeping.

    Instances are created by
    :class:`~repro.txn.manager.TransactionManager`; the integer ``tid``
    is what the lock manager and the graphs speak.
    """

    tid: int
    start_time: float = 0.0
    state: TxnState = TxnState.ACTIVE
    locks_held: int = 0
    work_done: float = 0.0
    restarts: int = 0
    #: Request the transaction is currently blocked on, if any.
    pending_rid: Optional[str] = None
    pending_mode: Optional[LockMode] = None
    abort_reason: Optional[str] = None

    @property
    def is_active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def is_blocked(self) -> bool:
        return self.state is TxnState.BLOCKED

    @property
    def finished(self) -> bool:
        return self.state.is_terminal

    def require_active(self) -> None:
        """Raise unless the transaction may issue a request right now."""
        if self.state is not TxnState.ACTIVE:
            raise TransactionStateError(
                "transaction {} is {} and cannot issue requests".format(
                    self.tid, self.state.value
                )
            )

    def note_blocked(self, rid: str, mode: LockMode) -> None:
        self.state = TxnState.BLOCKED
        self.pending_rid = rid
        self.pending_mode = mode

    def note_granted(self) -> None:
        self.state = TxnState.ACTIVE
        self.pending_rid = None
        self.pending_mode = None
        self.locks_held += 1

    def note_commit(self) -> None:
        if self.state is TxnState.BLOCKED:
            raise TransactionStateError(
                "transaction {} cannot commit while blocked".format(self.tid)
            )
        self.state = TxnState.COMMITTED

    def note_abort(self, reason: str) -> None:
        self.state = TxnState.ABORTED
        self.abort_reason = reason
        self.pending_rid = None
        self.pending_mode = None

    def __str__(self) -> str:
        return "T{}({})".format(self.tid, self.state.value)
