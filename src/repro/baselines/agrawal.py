"""Agrawal/Carey/DeWitt's "Deadlock Detection is Cheap" (SIGMOD Record
1983), with Chin's 1984 correction — the paper's references [1] and [6].

Their periodic detector exploits the sequential model: every transaction
waits for at most one other transaction, so the wait-for graph is a
*functional* graph and cycle detection is O(n) pointer chasing — no edge
lists at all.  The price of that representation is the paper's central
criticism: when a transaction is blocked by **multiple** holders (a
writer behind several readers), only ONE of them — here the first
conflicting one, their "representative reader" — carries the wait-for
relationship.  A cycle that runs through a non-representative blocker is
invisible until earlier completions happen to rotate the representative,
so detection of some deadlocks is delayed and transactions "may hold
resources or wait for other transactions unnecessarily" (Section 1).

Chin's correction is reflected in two places: victims are removed and the
pass repeats until no cycle remains (a single sweep can miss cycles
created by its own reductions), and the representative is recomputed
from the live lock table at every pass rather than cached.

Experiment X1 measures the resulting extra detection latency against the
H/W-TWBG detector on identical lock-table states.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.modes import compatible
from ..core.requests import ResourceState
from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from .base import Strategy, StrategyOutcome


def representative_blocker(
    state: ResourceState, tid: int
) -> Optional[int]:
    """The single transaction chosen to represent everything ``tid``
    waits for at this resource — the first conflicting holder in holder-
    list order, else the immediate queue predecessor."""
    queue_position = state.queue_position(tid)
    if queue_position >= 0:
        waiter_mode = state.queue[queue_position].blocked
        for holder in state.holders:
            if not compatible(waiter_mode, holder.granted) or not compatible(
                waiter_mode, holder.blocked
            ):
                return holder.tid
        if queue_position > 0:
            return state.queue[queue_position - 1].tid
        return None
    entry = state.holder_entry(tid)
    if entry is None or not entry.is_blocked:
        return None
    for position, other in enumerate(state.holders):
        if other.tid == tid:
            continue
        if not compatible(other.granted, entry.blocked):
            return other.tid
        if other.is_blocked and position < state.holders.index(entry) and (
            not compatible(other.blocked, entry.blocked)
        ):
            return other.tid
    return None


def functional_graph(states: Iterable[ResourceState]) -> Dict[int, int]:
    """``waits_for[tid] = representative`` for every blocked transaction."""
    waits_for: Dict[int, int] = {}
    for state in states:
        for entry in state.holders:
            if entry.is_blocked:
                rep = representative_blocker(state, entry.tid)
                if rep is not None:
                    waits_for[entry.tid] = rep
        for waiter in state.queue:
            rep = representative_blocker(state, waiter.tid)
            if rep is not None:
                waits_for[waiter.tid] = rep
    return waits_for


def find_cycles(waits_for: Dict[int, int]) -> List[List[int]]:
    """All cycles of a functional graph in O(n) (each vertex has at most
    one outgoing edge, so cycles are disjoint rho-tails)."""
    state: Dict[int, int] = {}  # 0 in progress, 1 done
    cycles: List[List[int]] = []
    for start in sorted(waits_for):
        if start in state:
            continue
        path: List[int] = []
        vertex: Optional[int] = start
        while vertex is not None and vertex not in state:
            state[vertex] = 0
            path.append(vertex)
            vertex = waits_for.get(vertex)
        if vertex is not None and state.get(vertex) == 0:
            cycles.append(path[path.index(vertex):])
        for visited in path:
            state[visited] = 1
    return cycles


class AgrawalStrategy(Strategy):
    """Periodic single-representative detection with min-cost victims."""

    name = "agrawal"
    periodic = True

    def periodic_pass(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        outcome = StrategyOutcome()
        states = table.snapshot()
        while True:
            cycles = find_cycles(functional_graph(states))
            if not cycles:
                break
            for cycle in cycles:
                outcome.cycles_found += 1
                victim = min(cycle, key=lambda t: (costs.cost(t), t))
                outcome.victims.append(victim)
                states = _without(states, victim)
        return outcome


def _without(
    states: List[ResourceState], tid: int
) -> List[ResourceState]:
    result = []
    for state in states:
        clone = state.copy()
        clone.holders = [h for h in clone.holders if h.tid != tid]
        clone.queue = [q for q in clone.queue if q.tid != tid]
        clone.recompute_total()
        result.append(clone)
    return result
