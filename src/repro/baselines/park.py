"""The paper's own schemes wrapped as comparison strategies.

These adapters put the H/W-TWBG periodic and continuous detectors behind
the same :class:`~repro.baselines.base.Strategy` interface as the
baselines, so the simulator runs all schemes through one code path.

Unlike the baselines, the paper's detectors resolve deadlocks *inside*
the pass (Step 3 releases victims' locks and performs the TDR-2 grants);
the returned victims have therefore already been removed from the lock
table, and the driver only has to update transaction lifecycles — which
is exactly what it does for every strategy, since releasing an
already-released transaction is a no-op.
"""

from __future__ import annotations

from typing import Optional

from ..core.continuous import ContinuousDetector
from ..core.detection import DetectionResult, PeriodicDetector
from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from .base import Strategy, StrategyOutcome


def _to_outcome(result: DetectionResult) -> StrategyOutcome:
    return StrategyOutcome(
        victims=list(result.aborted),
        repositioned=[event.rid for event in result.repositions],
        granted=[event.tid for event in result.grants],
        cycles_found=result.stats.cycles_found,
    )


class ParkPeriodicStrategy(Strategy):
    """The paper's Section-5 periodic detector (with optional A2
    ablation: ``allow_tdr2=False`` forces abort-only resolution)."""

    periodic = True

    def __init__(self, allow_tdr2: bool = True) -> None:
        self.allow_tdr2 = allow_tdr2
        self.name = "park-periodic" if allow_tdr2 else "park-periodic-no-tdr2"
        self._detector: Optional[PeriodicDetector] = None
        self.last_result: Optional[DetectionResult] = None

    def periodic_pass(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        if self._detector is None or self._detector.table is not table:
            self._detector = PeriodicDetector(
                table, costs, allow_tdr2=self.allow_tdr2
            )
        self.last_result = self._detector.run()
        return _to_outcome(self.last_result)


class ParkContinuousStrategy(Strategy):
    """The companion continuous detector (reference [17])."""

    name = "park-continuous"
    periodic = False

    def __init__(self) -> None:
        self._detector: Optional[ContinuousDetector] = None
        self.last_result: Optional[DetectionResult] = None

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        if self._detector is None or self._detector.table is not table:
            self._detector = ContinuousDetector(table, costs)
        self.last_result = self._detector.on_block(tid)
        return _to_outcome(self.last_result)


class AdaptivePeriodicStrategy(Strategy):
    """The paper's periodic detector with the service's adaptive
    period controller in the loop (``park-adaptive``).

    Reuses :class:`~repro.policy.adaptive.AdaptiveController` verbatim:
    hot passes shrink the interval the driver consults through
    :meth:`next_period`, clean streaks grow it back, and a sustained
    hot streak switches the lane to the continuous rooted check (the
    simulator is single-table, so the switch is always legal) until an
    idle streak switches it back.
    """

    periodic = True
    name = "park-adaptive"

    def __init__(self, controller=None) -> None:
        from ..policy.adaptive import AdaptiveController

        self.controller = (
            controller if controller is not None else AdaptiveController()
        )
        self._periodic: Optional[PeriodicDetector] = None
        self._continuous: Optional[ContinuousDetector] = None
        self.last_result: Optional[DetectionResult] = None

    def next_period(self, default: Optional[float]) -> Optional[float]:
        return self.controller.consult(default)

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        if self.controller.mode != "continuous":
            return StrategyOutcome()
        if self._continuous is None or self._continuous.table is not table:
            self._continuous = ContinuousDetector(table, costs)
        self.last_result = self._continuous.on_block(tid)
        self.controller.observe(
            self.last_result.deadlock_found, can_continuous=True
        )
        return _to_outcome(self.last_result)

    def periodic_pass(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        if self._periodic is None or self._periodic.table is not table:
            self._periodic = PeriodicDetector(table, costs)
        self.last_result = self._periodic.run()
        self.controller.observe(
            self.last_result.deadlock_found, can_continuous=True
        )
        return _to_outcome(self.last_result)


class ParkBatchedStrategy(Strategy):
    """The batched middle ground: record blockers, resolve them in one
    rooted pass every ``batch_size`` blocks (and on the periodic hook as
    a fallback flush, so stragglers never wait forever)."""

    periodic = True

    def __init__(self, batch_size: int = 4) -> None:
        from ..core.batched import BatchedDetector

        self.batch_size = batch_size
        self.name = "park-batched({})".format(batch_size)
        self._detector_cls = BatchedDetector
        self._detector = None

    def _ensure(self, table: LockTable, costs: CostTable):
        if self._detector is None or self._detector.table is not table:
            self._detector = self._detector_cls(
                table, costs, batch_size=self.batch_size
            )
        return self._detector

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        result = self._ensure(table, costs).on_block(tid)
        if result is None:
            return StrategyOutcome()
        return _to_outcome(result)

    def periodic_pass(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        detector = self._ensure(table, costs)
        if not detector.pending:
            return StrategyOutcome()
        return _to_outcome(detector.flush())
