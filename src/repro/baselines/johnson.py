"""Johnson's algorithm for all elementary circuits of a directed graph.

D. B. Johnson, "Finding All the Elementary Circuits of a Directed Graph",
SIAM J. Computing 4(1), 1975 — the paper's reference [15].  The paper's
Step 2 deliberately does *not* enumerate all elementary cycles (there can
be exponentially many, up to ``3^{n/3}``); this baseline exists so
experiment X4 can compare the number of cycles the periodic detector
actually searches (``c'``) with the full circuit count (``c``).

The implementation follows Johnson's structure: iterate over strongly
connected components in ascending least-vertex order, unblock sets ``B``
and the blocked map, with Tarjan's SCC algorithm (iterative) as the
subcomponent finder.  Time O((n + e)(c + 1)), space O(n + e).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set


def _tarjan_sccs(adjacency: Dict[int, Sequence[int]]) -> List[List[int]]:
    """Strongly connected components (iterative Tarjan).  Vertices with
    no outgoing entry in ``adjacency`` are treated as sinks."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[List[int]] = []
    counter = [0]

    vertices = set(adjacency)
    for targets in adjacency.values():
        vertices.update(targets)

    for start in sorted(vertices):
        if start in index_of:
            continue
        work: List[tuple] = [(start, 0)]
        while work:
            vertex, child_index = work[-1]
            if child_index == 0:
                index_of[vertex] = counter[0]
                lowlink[vertex] = counter[0]
                counter[0] += 1
                stack.append(vertex)
                on_stack.add(vertex)
            advanced = False
            children = adjacency.get(vertex, ())
            while child_index < len(children):
                child = children[child_index]
                child_index += 1
                if child not in index_of:
                    work[-1] = (vertex, child_index)
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[vertex] = min(lowlink[vertex], index_of[child])
            if advanced:
                continue
            work.pop()
            if lowlink[vertex] == index_of[vertex]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == vertex:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[vertex])
    return components


def elementary_circuits(
    adjacency: Dict[int, Sequence[int]]
) -> List[List[int]]:
    """All elementary circuits of the graph given as an adjacency map.

    Each circuit is returned as a vertex list without repeating the start
    vertex, rotated so the smallest vertex comes first; the result is
    sorted for determinism.

    >>> elementary_circuits({1: [2], 2: [1, 3], 3: [1]})
    [[1, 2], [1, 2, 3]]
    """
    circuits: List[List[int]] = []
    vertices = set(adjacency)
    for targets in adjacency.values():
        vertices.update(targets)
    remaining = set(vertices)

    while remaining:
        sub = {
            v: [w for w in adjacency.get(v, ()) if w in remaining]
            for v in remaining
        }
        components = [c for c in _tarjan_sccs(sub) if len(c) > 1 or (
            len(c) == 1 and c[0] in sub.get(c[0], ())
        )]
        if not components:
            break
        # Component containing the least remaining vertex candidate.
        start_component = min(components, key=min)
        start = min(start_component)
        component_set = set(start_component)
        component_adj = {
            v: [w for w in sub[v] if w in component_set]
            for v in component_set
        }

        blocked: Set[int] = set()
        block_map: Dict[int, Set[int]] = {v: set() for v in component_set}
        path: List[int] = []

        def unblock(vertex: int) -> None:
            pending = [vertex]
            while pending:
                v = pending.pop()
                if v in blocked:
                    blocked.discard(v)
                    pending.extend(block_map[v])
                    block_map[v].clear()

        # Iterative version of Johnson's CIRCUIT procedure.
        call_stack: List[tuple] = [(start, iter(component_adj[start]))]
        path.append(start)
        blocked.add(start)
        found_flags: List[bool] = [False]

        while call_stack:
            vertex, child_iter = call_stack[-1]
            advanced = False
            for child in child_iter:
                if child == start:
                    circuits.append(list(path))
                    found_flags[-1] = True
                elif child not in blocked:
                    path.append(child)
                    blocked.add(child)
                    call_stack.append((child, iter(component_adj[child])))
                    found_flags.append(False)
                    advanced = True
                    break
            if advanced:
                continue
            call_stack.pop()
            found = found_flags.pop()
            path.pop()
            if found:
                unblock(vertex)
                if found_flags:
                    found_flags[-1] = True
            else:
                for child in component_adj[vertex]:
                    block_map[child].add(vertex)
        remaining.discard(start)

    normalized = []
    for circuit in circuits:
        least = circuit.index(min(circuit))
        normalized.append(circuit[least:] + circuit[:least])
    normalized.sort(key=lambda c: (len(c), c))
    return normalized


def circuit_count(adjacency: Dict[int, Sequence[int]]) -> int:
    """Number of elementary circuits (the paper's ``c``)."""
    return len(elementary_circuits(adjacency))


def adjacency_of_edges(edges: Iterable[tuple]) -> Dict[int, List[int]]:
    """Build an adjacency map from ``(source, target)`` pairs, with
    duplicate edges collapsed and targets sorted."""
    adjacency: Dict[int, Set[int]] = {}
    for source, target in edges:
        adjacency.setdefault(source, set()).add(target)
    return {v: sorted(ws) for v, ws in adjacency.items()}
