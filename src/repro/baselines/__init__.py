"""Baseline deadlock-handling schemes from the paper's related work,
plus strategy adapters for the paper's own detectors."""

from .agrawal import AgrawalStrategy, functional_graph, representative_blocker
from .base import Strategy, StrategyOutcome
from .elmagarmid import ElmagarmidStrategy, build_r_table, build_t_table, chase
from .jiang import JiangStrategy, WaitForMatrix, direct_blockers
from .johnson import circuit_count, elementary_circuits
from .nowait import NoWaitStrategy
from .park import (
    AdaptivePeriodicStrategy,
    ParkBatchedStrategy,
    ParkContinuousStrategy,
    ParkPeriodicStrategy,
)
from .prevention import WaitDieStrategy, WoundWaitStrategy
from .timeout import TimeoutStrategy
from .wfg import WFGStrategy, adjacency, find_cycle, has_deadlock, waits_for_edges

__all__ = [
    "AdaptivePeriodicStrategy",
    "AgrawalStrategy",
    "ElmagarmidStrategy",
    "JiangStrategy",
    "NoWaitStrategy",
    "ParkBatchedStrategy",
    "ParkContinuousStrategy",
    "ParkPeriodicStrategy",
    "Strategy",
    "StrategyOutcome",
    "TimeoutStrategy",
    "WFGStrategy",
    "WaitDieStrategy",
    "WaitForMatrix",
    "WoundWaitStrategy",
    "adjacency",
    "build_r_table",
    "build_t_table",
    "chase",
    "circuit_count",
    "direct_blockers",
    "elementary_circuits",
    "find_cycle",
    "functional_graph",
    "has_deadlock",
    "representative_blocker",
    "waits_for_edges",
]
