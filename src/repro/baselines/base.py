"""Common interface for deadlock-handling strategies.

The comparative experiments (X1–X4, A2, A3 in DESIGN.md) run the same
workload through different deadlock handling schemes.  All schemes share
the Section-3 lock manager — the paper's scheduling policy is the
substrate — and differ only in *when* they look for deadlocks and *whom*
they sacrifice:

* ``on_block(...)`` is invoked right after a request blocked (continuous
  schemes and prevention schemes act here);
* ``periodic_pass(...)`` is invoked by the driver every period (periodic
  schemes act here);
* ``on_tick(...)`` sees the clock advance (timeout schemes act here).

Each hook returns a :class:`StrategyOutcome` naming the transactions to
abort; the paper's own strategies can additionally resolve deadlocks
without aborts (TDR-2) and report that through ``repositioned``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable


@dataclass
class StrategyOutcome:
    """What a strategy decided at one hook invocation.

    ``victims`` — transactions the driver must abort (their locks are
    *not* yet released; the driver owns transaction lifecycles).
    ``repositioned`` — resource ids whose queues were reordered by TDR-2
    (the strategy already performed the reorder and any grants).
    ``granted`` — transactions the strategy itself unblocked.
    ``cycles_found`` — number of deadlock cycles the pass resolved.
    """

    victims: List[int] = field(default_factory=list)
    repositioned: List[str] = field(default_factory=list)
    granted: List[int] = field(default_factory=list)
    cycles_found: int = 0

    @property
    def acted(self) -> bool:
        return bool(self.victims or self.repositioned)


class Strategy:
    """Base class; concrete strategies override the hooks they use."""

    #: Human-readable identifier used in experiment reports.
    name = "abstract"
    #: True when the strategy needs the periodic hook.
    periodic = False
    #: How the driver books aborts decided on the tick hook
    #: ("timeout" or "prevention").
    tick_abort_kind = "timeout"

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        """Called right after ``tid`` blocked.  Default: wait quietly."""
        return StrategyOutcome()

    def periodic_pass(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        """Called once per detection period.  Default: no-op."""
        return StrategyOutcome()

    def on_tick(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        """Called when simulated time advances.  Default: no-op."""
        return StrategyOutcome()

    def next_period(self, default: Optional[float]) -> Optional[float]:
        """Consulted by the driver before scheduling the next periodic
        pass.  Adaptive schemes tune the interval here; the default
        keeps the driver's fixed period."""
        return default

    def forget(self, tid: int) -> None:
        """A transaction left the system (commit or abort)."""

    def on_grant(self, tid: int) -> None:
        """A blocked transaction's request was granted (it waits no
        more).  Strategies that cache wait-for state clear it here."""

    def wait_allowed(
        self,
        table: LockTable,
        requester: int,
        holder_tids: List[int],
        costs: CostTable,
        now: float,
    ) -> Optional[List[int]]:
        """Prevention hook, consulted *before* letting a request wait.

        Return ``None`` to allow the wait, or a list of victims (possibly
        containing the requester itself) to abort instead.  Only
        prevention schemes (wound-wait, wait-die) override this.
        """
        return None
