"""Elmagarmid's table-based continuous detection (Ph.D. dissertation,
Ohio State, 1985) — the paper's reference [8].

Two tables replace the wait-for graph:

* **T-table** — every blocked transaction with the resource and mode it
  requests;
* **R-table** — every held resource with its holders and their modes.

Detection is continuous: when a request blocks, the tables are chased
(requested resource → its holders → the resources *they* are blocked on
→ ...) until either the chase dies out or returns to the requester —
O(n + e) per check.

Resolution is the part the paper criticizes as "simple but far from
being optimal": whenever a deadlock is found, **the current blocker is
aborted** — the holder standing directly between the requester and its
resource on the detected cycle — regardless of how much work that victim
would lose.  Experiment X2 measures the wasted-work gap against min-cost
TDR selection on identical workloads.

Note on detection coverage: the chase starts at the transaction that
just blocked, so a cycle that only materializes later — when a *grant*
reshuffles the holder list and creates fresh wait-for edges among
already-blocked transactions — is found only by the next chase that
happens to run through it.  The X2 benchmark's nonzero ground-truth
deadlock persistence for this scheme (and Jiang's) is exactly that
effect; the H/W-TWBG continuous walk explores everything reachable from
the blocked transaction and suffers far less.

A structural weakness the paper also calls out — resources in his scheme
"do not contain their own queue of blocked requests", so schedule-after-
release scans the whole T-table and can live-lock — is noted here for
completeness; our driver keeps the Section-3 scheduler underneath, so
the comparison isolates the *victim policy*, which is the measurable
claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..core.modes import LockMode
from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from .base import Strategy, StrategyOutcome
from .jiang import direct_blockers


@dataclass(frozen=True)
class TTableEntry:
    """A blocked transaction: which resource and mode it requests."""

    tid: int
    rid: str
    mode: LockMode


def build_t_table(table: LockTable) -> Dict[int, TTableEntry]:
    """The T-table of the current lock-table state."""
    entries: Dict[int, TTableEntry] = {}
    for state in table.resources():
        for holder in state.holders:
            if holder.is_blocked:
                entries[holder.tid] = TTableEntry(
                    holder.tid, state.rid, holder.blocked
                )
        for waiter in state.queue:
            entries[waiter.tid] = TTableEntry(
                waiter.tid, state.rid, waiter.blocked
            )
    return entries


def build_r_table(table: LockTable) -> Dict[str, List[Tuple[int, LockMode]]]:
    """The R-table: resource → ``(holder, granted mode)`` list."""
    return {
        state.rid: [(h.tid, h.granted) for h in state.holders]
        for state in table.resources()
    }


def chase(
    table: LockTable, start: int
) -> Optional[List[int]]:
    """Chase the T/R tables from ``start``; returns a cycle through
    ``start`` as ``[start, blocker1, ..., blockerK]`` or None.

    The chase is a DFS over direct-blocker edges (the same relation the
    tables encode); the first returning path is the "detected cycle" whose
    first hop is the current blocker to abort.
    """
    path = [start]
    on_path: Set[int] = {start}

    def step(tid: int) -> Optional[List[int]]:
        rid = table.blocked_at(tid)
        if rid is None:
            return None
        for blocker in sorted(direct_blockers(table.existing(rid), tid)):
            if blocker == start:
                return list(path)
            if blocker in on_path:
                continue
            path.append(blocker)
            on_path.add(blocker)
            found = step(blocker)
            if found is not None:
                return found
            on_path.discard(blocker)
            path.pop()
        return None

    return step(start)


class ElmagarmidStrategy(Strategy):
    """Continuous T/R-table detection; aborts the current blocker."""

    name = "elmagarmid"
    periodic = False

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        outcome = StrategyOutcome()
        aborted: Set[int] = set()
        while True:
            cycle = chase(table, tid) if not aborted else self._rechase(
                table, tid, aborted
            )
            if cycle is None:
                break
            outcome.cycles_found += 1
            # "Always abort the current blocker": the transaction that
            # directly blocks the requester on the detected cycle.
            victim = cycle[1] if len(cycle) > 1 else cycle[0]
            if victim in aborted:  # pragma: no cover - defensive
                break
            aborted.add(victim)
            outcome.victims.append(victim)
        return outcome

    def _rechase(
        self, table: LockTable, tid: int, aborted: Set[int]
    ) -> Optional[List[int]]:
        """Re-run the chase pretending the already-chosen victims are
        gone (the driver has not applied them yet)."""
        cycle = chase(table, tid)
        if cycle is None or not (set(cycle) & aborted):
            return cycle
        # The previous victim sat on this cycle; chase around it by
        # filtering blockers.  Simplest correct approach: full DFS with
        # the aborted set excluded.
        path = [tid]
        on_path: Set[int] = {tid} | set(aborted)

        def step(current: int) -> Optional[List[int]]:
            rid = table.blocked_at(current)
            if rid is None:
                return None
            for blocker in sorted(
                direct_blockers(table.existing(rid), current)
            ):
                if blocker == tid:
                    return list(path)
                if blocker in on_path:
                    continue
                path.append(blocker)
                on_path.add(blocker)
                found = step(blocker)
                if found is not None:
                    return found
                on_path.discard(blocker)
                path.pop()
            return None

        return step(tid)
