"""Timeout-based deadlock "resolution" (refs [2, 3]'s comparison point).

No graph at all: any transaction blocked longer than ``timeout`` time
units is presumed deadlocked and aborted.  Cheap, but it aborts slow
waiters that are not deadlocked at all (false positives) and leaves real
deadlocks standing for the full timeout (maximal latency) — the two
failure modes the comparative benchmarks quantify.
"""

from __future__ import annotations

from typing import Dict

from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from .base import Strategy, StrategyOutcome


class TimeoutStrategy(Strategy):
    """Abort any transaction blocked for more than ``timeout``."""

    periodic = False

    def __init__(self, timeout: float = 10.0) -> None:
        self.timeout = timeout
        self.name = "timeout({:g})".format(timeout)
        self._blocked_since: Dict[int, float] = {}

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        self._blocked_since.setdefault(tid, now)
        return StrategyOutcome()

    def on_tick(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        outcome = StrategyOutcome()
        for tid, since in list(self._blocked_since.items()):
            if not table.is_blocked(tid):
                # Granted in the meantime; stop the clock.
                del self._blocked_since[tid]
            elif now - since >= self.timeout:
                outcome.victims.append(tid)
                del self._blocked_since[tid]
        return outcome

    def on_grant(self, tid: int) -> None:
        self._blocked_since.pop(tid, None)

    def forget(self, tid: int) -> None:
        self._blocked_since.pop(tid, None)
