"""Classic transaction wait-for graph (TWFG) detection.

The textbook model the paper's Section 1 departs from: each vertex is a
transaction, each edge ``Ti -> Tj`` means *Ti waits for Tj* — exactly the
reverse orientation of H/W-TWBG's waited-by edges.  With multiple lock
modes and FIFO queues, Ti waits for:

* every holder whose granted (or blocked-conversion) mode conflicts with
  Ti's blocked mode, and
* its immediate predecessor in the queue (FIFO ordering is a wait too).

This "full" TWFG has the same detection power as H/W-TWBG (its edge set
is a superset of the reversed H/W-TWBG edges), so it serves as the
ground-truth oracle for Theorem-1 property tests, and as the fair
abort-only baseline: same cycles, but resolution can only abort (no
TDR-2) and every detection pass rebuilds and searches the graph from
scratch.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..core.modes import compatible
from ..core.requests import ResourceState
from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from .base import Strategy, StrategyOutcome


def waits_for_edges(states: Iterable[ResourceState]) -> Set[Tuple[int, int]]:
    """All ``(waiter, holder)`` wait-for pairs of the given resources."""
    edges: Set[Tuple[int, int]] = set()
    for state in states:
        for position, waiter in enumerate(state.holders):
            if not waiter.is_blocked:
                continue
            for other_position, other in enumerate(state.holders):
                if other.tid == waiter.tid:
                    continue
                if not compatible(other.granted, waiter.blocked):
                    edges.add((waiter.tid, other.tid))
                elif (
                    other_position < position
                    and other.is_blocked
                    and not compatible(other.blocked, waiter.blocked)
                ):
                    # Two conflicting blocked conversions: the UPR order
                    # makes the later one wait for the earlier.
                    edges.add((waiter.tid, other.tid))
        for position, waiter in enumerate(state.queue):
            for holder in state.holders:
                if not compatible(
                    waiter.blocked, holder.granted
                ) or not compatible(waiter.blocked, holder.blocked):
                    edges.add((waiter.tid, holder.tid))
            if position > 0:
                edges.add((waiter.tid, state.queue[position - 1].tid))
    return edges


def adjacency(states: Iterable[ResourceState]) -> Dict[int, List[int]]:
    """Wait-for adjacency map (sorted successor lists)."""
    result: Dict[int, Set[int]] = {}
    for waiter, holder in waits_for_edges(states):
        result.setdefault(waiter, set()).add(holder)
    return {tid: sorted(succ) for tid, succ in result.items()}


def find_cycle(adj: Dict[int, List[int]]) -> Optional[List[int]]:
    """Some cycle in a wait-for adjacency map, or None (3-color DFS)."""
    WHITE, GRAY, BLACK = 0, 1, 2
    vertices: Set[int] = set(adj)
    for targets in adj.values():
        vertices.update(targets)
    color = {v: WHITE for v in vertices}
    parent: Dict[int, int] = {}
    for root in sorted(vertices):
        if color[root] != WHITE:
            continue
        stack = [(root, 0)]
        color[root] = GRAY
        while stack:
            vertex, index = stack[-1]
            successors = adj.get(vertex, ())
            if index >= len(successors):
                color[vertex] = BLACK
                stack.pop()
                continue
            stack[-1] = (vertex, index + 1)
            child = successors[index]
            if color[child] == GRAY:
                cycle = [vertex]
                walk = vertex
                while walk != child:
                    walk = parent[walk]
                    cycle.append(walk)
                cycle.reverse()
                return cycle
            if color[child] == WHITE:
                color[child] = GRAY
                parent[child] = vertex
                stack.append((child, 0))
    return None


def has_deadlock(table: LockTable) -> bool:
    """Ground-truth deadlock oracle over the live lock table."""
    return find_cycle(adjacency(table.resources())) is not None


class WFGStrategy(Strategy):
    """Abort-only TWFG detection: same cycles as the paper's scheme, but
    no TDR-2 and a from-scratch graph per pass.

    ``continuous`` chooses detect-at-block-time; otherwise the strategy
    acts on the periodic hook.  Victims are the minimum-cost transaction
    of each cycle.
    """

    def __init__(self, continuous: bool = False) -> None:
        self.continuous = continuous
        self.periodic = not continuous
        self.name = "wfg-continuous" if continuous else "wfg-periodic"

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        if not self.continuous:
            return StrategyOutcome()
        return self._resolve_all(table, costs)

    def periodic_pass(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        if self.continuous:
            return StrategyOutcome()
        return self._resolve_all(table, costs)

    def _resolve_all(
        self, table: LockTable, costs: CostTable
    ) -> StrategyOutcome:
        outcome = StrategyOutcome()
        # Work on a snapshot: victims are applied by the driver; the
        # strategy must still see the post-victim shape to find further
        # cycles, so it simulates the removals locally.
        states = table.snapshot()
        while True:
            cycle = find_cycle(adjacency(states))
            if cycle is None:
                break
            outcome.cycles_found += 1
            victim = min(cycle, key=lambda t: (costs.cost(t), t))
            outcome.victims.append(victim)
            states = _without(states, victim)
        return outcome


def _without(
    states: List[ResourceState], tid: int
) -> List[ResourceState]:
    """Copy of ``states`` with every request of ``tid`` removed (no
    grant sweep — detection only needs the wait structure)."""
    result = []
    for state in states:
        clone = state.copy()
        clone.holders = [h for h in clone.holders if h.tid != tid]
        clone.queue = [q for q in clone.queue if q.tid != tid]
        clone.recompute_total()
        result.append(clone)
    return result
