"""Ordered no-wait locking as a simulator baseline.

The comparison lane for the service's ``nowait`` policy: the very same
ordered rule (:func:`repro.policy.nowait.wait_is_ordered`, applied
through :func:`repro.policy.nowait.evaluate_block`) decides, at block
time, whether a wait may stand.  An out-of-order wait aborts the
requester through the driver's *prevention* path — the same accounting
lane wound-wait and wait-die use — so the strategies are directly
comparable in the X-series reports: zero detection passes, zero
deadlock aborts, prevention aborts instead.

Because policy and baseline share one rule function, the simulator's
throughput/abort trade-off measured here is the trade-off the live
``serve --policy nowait`` lane pays; they cannot drift apart.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from ..policy.nowait import evaluate_block
from .base import Strategy, StrategyOutcome


class NoWaitStrategy(Strategy):
    """Refuse out-of-order waits; never run a detector.

    Deadlock-free by the ordered-resource argument (see the policy
    module's proof sketch), so the oracle should observe zero deadlock
    episodes under this strategy — the property the baseline tests pin.
    """

    name = "nowait"
    periodic = False
    tick_abort_kind = "prevention"

    def __init__(self) -> None:
        #: Waits the ordered rule refused (mirrors the live policy's
        #: ``nowait_aborts`` counter).
        self.refused = 0

    def wait_allowed(
        self,
        table: LockTable,
        requester: int,
        holder_tids: List[int],
        costs: CostTable,
        now: float,
    ) -> Optional[List[int]]:
        rid = table.blocked_at(requester)
        if rid is None or evaluate_block(table, requester, rid):
            return None
        self.refused += 1
        return [requester]
