"""A queue-less grant policy — the fairness foil for Section 3.

The paper criticizes Elmagarmid's structure because "each resource being
locked does not contain its own queue of blocked requests.  The
scheduling policy might be unfair and indicates the possibility of
live-lock."  This module implements exactly that kind of scheduler so
the criticism can be measured (experiment X6):

* a request is granted whenever it is compatible with every current
  holder — arrival order carries no weight;
* blocked requests sit in an unordered pending set; after any release,
  *every* pending request compatible with the holders is granted.

Under a steady stream of readers, a writer can wait forever: each
departing reader is replaced before the set of holders ever becomes
empty, and the writer's X never becomes compatible.  The paper's FIFO
queue with the total mode bounds that wait instead — once the writer is
queued, later readers line up behind it.

The implementation reuses :class:`ResourceState` but keeps its ``queue``
as an unordered pending *set* semantically (stored as a list for
determinism of iteration).  It deliberately supports only plain mode
requests (no conversions) — enough for the fairness experiment, matching
the S/X models of the criticized schemes.
"""

from __future__ import annotations

from typing import List

from ..core.modes import LockMode, compatible
from ..core.requests import HolderEntry, QueueEntry, ResourceState


class NoQueueResource:
    """One resource under the queue-less policy."""

    def __init__(self, rid: str) -> None:
        self.state = ResourceState(rid=rid)

    def request(self, tid: int, mode: LockMode) -> bool:
        """Grant iff compatible with all current holders (no queue
        check, no FIFO)."""
        state = self.state
        if all(
            compatible(holder.granted, mode) for holder in state.holders
        ):
            state.holders.append(HolderEntry(tid, mode))
            state.recompute_total()
            return True
        state.queue.append(QueueEntry(tid, mode))
        return False

    def release(self, tid: int) -> List[int]:
        """Remove ``tid``; grant every pending request now compatible
        (scanning the whole pending set — the paper's 'whole T-table has
        to be searched' point).  Returns granted tids."""
        state = self.state
        state.holders = [h for h in state.holders if h.tid != tid]
        state.queue = [q for q in state.queue if q.tid != tid]
        granted: List[int] = []
        changed = True
        while changed:
            changed = False
            for waiter in list(state.queue):
                if all(
                    compatible(holder.granted, waiter.blocked)
                    for holder in state.holders
                ):
                    state.queue.remove(waiter)
                    state.holders.append(
                        HolderEntry(waiter.tid, waiter.blocked)
                    )
                    granted.append(waiter.tid)
                    changed = True
        state.recompute_total()
        return granted

    @property
    def holders(self) -> List[int]:
        return [holder.tid for holder in self.state.holders]

    @property
    def pending(self) -> List[int]:
        return [waiter.tid for waiter in self.state.queue]
