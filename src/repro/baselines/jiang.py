"""Jiang's "Deadlock Detection is Really Cheap" (SIGMOD Record 1988) —
the paper's reference [14].

Jiang fixed Agrawal's single-representative blind spot by letting every
blocked transaction keep *all* its wait-for edges, stored as an
``(n+1) x n`` boolean matrix, and made detection **continuous**: when a
transaction blocks, its new edges are added and a cycle through it is
looked for in O(e) time.  The paper's two criticisms, both visible in
this implementation and measured in experiment X4:

* the scheme is "restricted to the continuous case" — the matrix is
  maintained edge by edge as blocks happen; there is no cheap periodic
  batch variant;
* listing *all* participators of every cycle (his victim-analysis step)
  costs up to ``O(3^{n/3})`` because a deadlock may be involved in
  exponentially many cycles.  :func:`list_all_cycles_through` implements
  that enumeration so the blow-up can be measured; the strategy itself
  uses the cheap participant set (vertices on some cycle through the
  blocked transaction) for victim choice.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..core.modes import compatible
from ..core.requests import ResourceState
from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from .base import Strategy, StrategyOutcome
from .wfg import adjacency


class WaitForMatrix:
    """Jiang's boolean wait-for matrix with incremental edge insertion.

    Row ``t`` stores which transactions ``t`` waits for, directly or
    transitively (his matrix keeps the transitive closure current so a
    deadlock test is a single bit lookup).
    """

    def __init__(self) -> None:
        self._direct: Dict[int, Set[int]] = {}
        self._closure: Dict[int, Set[int]] = {}

    def add_edges(self, waiter: int, blockers: Iterable[int]) -> None:
        """Insert ``waiter -> blocker`` edges and refresh the closure
        rows that can reach the waiter (O(n*e) worst case, O(e) typical:
        the closure of the waiter plus a propagation sweep)."""
        direct = self._direct.setdefault(waiter, set())
        fresh = {b for b in blockers if b != waiter and b not in direct}
        if not fresh:
            return
        direct.update(fresh)
        self._rebuild_closure()

    def remove_transaction(self, tid: int) -> None:
        self._direct.pop(tid, None)
        for targets in self._direct.values():
            targets.discard(tid)
        self._rebuild_closure()

    def remove_outgoing(self, tid: int) -> None:
        """Drop ``tid``'s own wait edges (it was granted and waits no
        more); edges pointing to it remain."""
        if self._direct.pop(tid, None) is not None:
            self._rebuild_closure()

    def _rebuild_closure(self) -> None:
        # Straightforward reachability per vertex; the matrix sizes in
        # the experiments are small enough that asymptotic subtlety in
        # Jiang's incremental update would only obscure the comparison.
        self._closure = {}
        for start in self._direct:
            seen: Set[int] = set()
            stack = list(self._direct.get(start, ()))
            while stack:
                vertex = stack.pop()
                if vertex in seen:
                    continue
                seen.add(vertex)
                stack.extend(self._direct.get(vertex, ()))
            self._closure[start] = seen

    def waits_for(self, waiter: int, holder: int) -> bool:
        """Transitive wait test (a closure-matrix bit lookup)."""
        return holder in self._closure.get(waiter, ())

    def deadlocked(self, tid: int) -> bool:
        """True when ``tid`` transitively waits for itself."""
        return self.waits_for(tid, tid)

    def participants(self, tid: int) -> Set[int]:
        """Every transaction on some cycle through ``tid``: vertices that
        ``tid`` reaches and that reach ``tid``."""
        if not self.deadlocked(tid):
            return set()
        reach = self._closure.get(tid, set())
        return {tid} | {
            v for v in reach if tid in self._closure.get(v, set())
        }

    def direct_edges(self) -> Dict[int, Set[int]]:
        return {t: set(b) for t, b in self._direct.items()}


def direct_blockers(state: ResourceState, tid: int) -> Set[int]:
    """All transactions directly blocking ``tid`` at this resource."""
    blockers: Set[int] = set()
    position = state.queue_position(tid)
    if position >= 0:
        mode = state.queue[position].blocked
        for holder in state.holders:
            if not compatible(mode, holder.granted) or not compatible(
                mode, holder.blocked
            ):
                blockers.add(holder.tid)
        if position > 0:
            blockers.add(state.queue[position - 1].tid)
        return blockers
    entry = state.holder_entry(tid)
    if entry is None or not entry.is_blocked:
        return blockers
    my_position = state.holders.index(entry)
    for other_position, other in enumerate(state.holders):
        if other.tid == tid:
            continue
        if not compatible(other.granted, entry.blocked):
            blockers.add(other.tid)
        elif (
            other_position < my_position
            and other.is_blocked
            and not compatible(other.blocked, entry.blocked)
        ):
            blockers.add(other.tid)
    return blockers


def list_all_cycles_through(
    table: LockTable, tid: int
) -> List[List[int]]:
    """Every elementary cycle through ``tid`` — the enumeration whose
    worst case is ``O(3^{n/3})`` (experiment X4 measures it)."""
    adj = adjacency(table.resources())
    cycles: List[List[int]] = []
    path = [tid]
    on_path = {tid}

    def extend(vertex: int) -> None:
        for child in adj.get(vertex, ()):
            if child == tid:
                cycles.append(list(path))
            elif child not in on_path:
                path.append(child)
                on_path.add(child)
                extend(child)
                on_path.discard(child)
                path.pop()

    extend(tid)
    return cycles


class JiangStrategy(Strategy):
    """Continuous matrix-based detection; min-cost participant victim."""

    name = "jiang"
    periodic = False

    def __init__(self) -> None:
        self.matrix = WaitForMatrix()

    def refresh(self, table: LockTable) -> None:
        """Synchronize the matrix's direct edges with the lock table.

        Jiang's write-up maintains edges incrementally on block and
        termination events; under FIFO queues and conversions a waiter's
        blocker set also changes when *other* transactions are granted,
        so a faithful-yet-correct port re-derives the direct edges from
        the live table (O(e)) before each check and keeps the matrix for
        the closure test, which is where his scheme differs from graph
        search."""
        self.matrix = WaitForMatrix()
        for blocked_tid in table.blocked_tids():
            rid = table.blocked_at(blocked_tid)
            self.matrix.add_edges(
                blocked_tid, direct_blockers(table.existing(rid), blocked_tid)
            )

    def on_block(
        self, table: LockTable, tid: int, costs: CostTable, now: float
    ) -> StrategyOutcome:
        outcome = StrategyOutcome()
        if table.blocked_at(tid) is None:  # pragma: no cover - defensive
            return outcome
        self.refresh(table)
        while self.matrix.deadlocked(tid):
            participants = self.matrix.participants(tid)
            outcome.cycles_found += 1
            victim = min(participants, key=lambda t: (costs.cost(t), t))
            outcome.victims.append(victim)
            self.matrix.remove_transaction(victim)
            if victim == tid:
                break
        return outcome

    def forget(self, tid: int) -> None:
        self.matrix.remove_transaction(tid)

    def on_grant(self, tid: int) -> None:
        self.matrix.remove_outgoing(tid)
