"""Timestamp-based deadlock *prevention*: wound-wait and wait-die.

Rosenkrantz/Stearns/Lewis schemes, included because Agrawal, Carey and
McVoy's strategy study (the paper's reference [2]) uses them as the
classic alternatives to detection.  Both consult transaction timestamps
*before* a wait is allowed, so deadlock never forms — at the price of
aborts for conflicts that would have resolved themselves:

* **wait-die**: an older requester may wait for a younger holder; a
  younger requester "dies" (aborts itself) instead of waiting.
* **wound-wait**: an older requester "wounds" (aborts) younger holders
  and takes their place; a younger requester is allowed to wait.

Timestamps are assigned on first sight and kept across the hooks; a
restarted transaction receives a fresh (younger) timestamp from its new
tid, which preserves the schemes' liveness argument in our driver
because tids increase monotonically.

One subtlety the textbook statement glosses over: under FIFO queues and
lock conversions a blocked transaction's *blocker set changes over
time* — a grant can reshuffle the holder list so that an old transaction
suddenly waits for a young one even though its original wait was legal.
Checking only at enqueue time therefore does NOT prevent all deadlocks
in this model (the simulator's oracle catches the residue).  Both
strategies here also revalidate every blocked transaction on the tick
hook, which restores the schemes' guarantee at the cost of periodic
rescans — the same fix a real lock manager applies by re-running the
timestamp test whenever a wait is retargeted.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.victim import CostTable
from ..lockmgr.lock_table import LockTable
from .base import Strategy, StrategyOutcome
from .jiang import direct_blockers


class _TimestampStrategy(Strategy):
    periodic = False
    tick_abort_kind = "prevention"

    def __init__(self) -> None:
        self._timestamps: Dict[int, float] = {}
        self._next_stamp = 0.0

    def _stamp(self, tid: int) -> float:
        if tid not in self._timestamps:
            self._next_stamp += 1.0
            self._timestamps[tid] = self._next_stamp
        return self._timestamps[tid]

    def forget(self, tid: int) -> None:
        self._timestamps.pop(tid, None)

    def on_tick(
        self, table: LockTable, costs: CostTable, now: float
    ) -> StrategyOutcome:
        """Revalidate every blocked transaction against its *current*
        blockers (grant reshuffles can retarget waits)."""
        outcome = StrategyOutcome()
        doomed: set = set()
        for tid in table.blocked_tids():
            rid = table.blocked_at(tid)
            blockers = [
                b
                for b in sorted(direct_blockers(table.existing(rid), tid))
                if b not in doomed
            ]
            veto = self.wait_allowed(table, tid, blockers, costs, now)
            if veto:
                for victim in veto:
                    if victim not in doomed:
                        doomed.add(victim)
                        outcome.victims.append(victim)
        return outcome


class WaitDieStrategy(_TimestampStrategy):
    """Younger requesters die instead of waiting."""

    name = "wait-die"

    def wait_allowed(
        self,
        table: LockTable,
        requester: int,
        holder_tids: List[int],
        costs: CostTable,
        now: float,
    ) -> Optional[List[int]]:
        my_stamp = self._stamp(requester)
        for holder in holder_tids:
            if my_stamp > self._stamp(holder):
                # Requester is younger than a holder: die.
                return [requester]
        return None


class WoundWaitStrategy(_TimestampStrategy):
    """Older requesters wound younger holders; younger requesters wait."""

    name = "wound-wait"

    def wait_allowed(
        self,
        table: LockTable,
        requester: int,
        holder_tids: List[int],
        costs: CostTable,
        now: float,
    ) -> Optional[List[int]]:
        my_stamp = self._stamp(requester)
        wounded = [
            holder
            for holder in holder_tids
            if self._stamp(holder) > my_stamp
        ]
        return wounded or None
