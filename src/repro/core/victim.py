"""TDR — the TRRP disconnection rule — and victim selection (Section 4).

Given a deadlock cycle, the paper identifies its **victim candidates** at
the TRRP junctions (the sources of the cycle's H edges; equivalently the
blocked transactions whose wait links two TRRPs):

TDR-1
    Abort the junction transaction ``Tj``.  Candidate cost:
    ``Cost(Tj)`` from the cost table.
TDR-2
    Applicable when the cycle *enters* ``Tj`` through a W edge (``Tj``
    waits in the queue of some resource ``Rx``) and ``Tj``'s blocked mode
    is compatible with ``Rx``'s total mode.  Split the queue prefix up to
    and including ``Tj``'s request into **AV** (blocked modes compatible
    with the total mode) and **ST** (incompatible), and move the ST
    requests right behind AV.  Nobody aborts; the ST requests are merely
    delayed, so the candidate cost is ``sum(Cost(t) for t in ST) / 2``.

Lemma 4.1 guarantees the repositioned AV requests can no longer take part
in any deadlock; Theorem 4.1 concludes TDR resolves the cycle either way.

Among a cycle's candidates the minimum-cost one wins; ties prefer TDR-2
(resolution without abort — the paper's headline feature) and then the
smaller transaction id, so runs are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .hw_twbg import Edge, H_LABEL, W_LABEL
from .modes import compatible
from .requests import ResourceState


class CostTable:
    """Per-transaction abort costs with the paper's TDR-2 penalty hook.

    The paper leaves the cost metric open ("number of locks it holds,
    starting time, the amount of CPU and I/O consumed, and so on"); this
    table stores whatever the application computes, defaulting unknown
    transactions to ``default`` (1.0 — every abort equally bad).

    ``penalty`` implements Section 5's anti-livelock rule: each time a
    transaction's request is delayed by TDR-2, its cost is incremented "by
    some value which might be determined according to the current cost of
    the transaction and the period".  The default doubles the cost (with a
    floor of 1), so a repeatedly delayed transaction quickly becomes too
    expensive to delay again.
    """

    def __init__(
        self,
        costs: Optional[Dict[int, float]] = None,
        default: float = 1.0,
        penalty: Optional[Callable[[float], float]] = None,
    ) -> None:
        self._costs: Dict[int, float] = dict(costs or {})
        self._default = default
        self._penalty = penalty if penalty is not None else _default_penalty

    def cost(self, tid: int) -> float:
        """The abort cost of ``tid``."""
        return self._costs.get(tid, self._default)

    def set_cost(self, tid: int, value: float) -> None:
        self._costs[tid] = value

    def apply_delay_penalty(self, tid: int) -> float:
        """Bump ``tid``'s cost after a TDR-2 delay; returns the new cost."""
        new_cost = self.cost(tid) + self._penalty(self.cost(tid))
        self._costs[tid] = new_cost
        return new_cost

    def forget(self, tid: int) -> None:
        """Drop a finished transaction's entry."""
        self._costs.pop(tid, None)

    def __contains__(self, tid: int) -> bool:
        return tid in self._costs


def _default_penalty(current_cost: float) -> float:
    return max(current_cost, 1.0)


@dataclass(frozen=True)
class AbortCandidate:
    """TDR-1: abort ``tid``.  ``rid`` is where the victim is blocked."""

    tid: int
    rid: Optional[str]
    cost: float

    @property
    def kind(self) -> str:
        return "abort"

    def __str__(self) -> str:
        return "abort T{} (cost {:g})".format(self.tid, self.cost)


@dataclass(frozen=True)
class RepositionCandidate:
    """TDR-2: delay the ST requests of ``rid`` behind the AV requests.

    ``junction`` is the transaction whose wait triggered the rule; ``av``
    and ``st`` list transaction ids in (current) queue order.
    """

    junction: int
    rid: str
    av: Tuple[int, ...]
    st: Tuple[int, ...]
    cost: float

    @property
    def kind(self) -> str:
        return "reposition"

    def __str__(self) -> str:
        return "reposition {} of {} behind {} (cost {:g})".format(
            "/".join("T{}".format(t) for t in self.st),
            self.rid,
            "/".join("T{}".format(t) for t in self.av),
            self.cost,
        )


VictimCandidate = object  # either AbortCandidate or RepositionCandidate


def split_av_st(
    state: ResourceState, upto_tid: int
) -> Tuple[List[int], List[int]]:
    """Split the queue prefix of ``state`` ending at ``upto_tid``'s request
    (inclusive) into AV and ST transaction-id lists (Definition 4.1's
    TDR-2).  Raises ``ValueError`` if ``upto_tid`` is not queued."""
    position = state.queue_position(upto_tid)
    if position < 0:
        raise ValueError(
            "T{} is not in the queue of {}".format(upto_tid, state.rid)
        )
    av: List[int] = []
    st: List[int] = []
    # Entries before the memoized AV-prefix boundary are compatible with
    # the total mode by definition — no per-entry re-check needed there.
    boundary = state.av_prefix_length()
    for index, entry in enumerate(state.queue[: position + 1]):
        if index < boundary or compatible(state.total, entry.blocked):
            av.append(entry.tid)
        else:
            st.append(entry.tid)
    return av, st


def candidates_for_cycle(
    cycle_edges: Sequence[Edge],
    resource_lookup: Callable[[str], ResourceState],
    costs: CostTable,
) -> List[VictimCandidate]:
    """All TDR victim candidates of one cycle, given its edge sequence
    (e.g. from :meth:`HWTWBG.cycle_edges`).

    ``resource_lookup`` maps a resource id to its current state (use
    ``lock_table.existing``).  TDR-1 yields one candidate per junction;
    TDR-2 adds one more where applicable.
    """
    candidates: List[VictimCandidate] = []
    length = len(cycle_edges)
    for position, edge in enumerate(cycle_edges):
        if edge.label != H_LABEL:
            continue
        junction = edge.source
        entering = cycle_edges[(position - 1) % length]
        blocked_rid = _blocked_resource(junction, resource_lookup, entering)
        candidates.append(
            AbortCandidate(junction, blocked_rid, costs.cost(junction))
        )
        if entering.label != W_LABEL:
            continue
        state = resource_lookup(entering.rid)
        entry = state.queue_entry(junction)
        if entry is None or not compatible(state.total, entry.blocked):
            continue
        av, st = split_av_st(state, junction)
        if not st:
            continue
        candidates.append(
            RepositionCandidate(
                junction=junction,
                rid=state.rid,
                av=tuple(av),
                st=tuple(st),
                cost=sum(costs.cost(t) for t in st) / 2.0,
            )
        )
    return candidates


def _blocked_resource(
    junction: int,
    resource_lookup: Callable[[str], ResourceState],
    entering: Edge,
) -> Optional[str]:
    """The resource a junction waits at — the entering edge's resource
    (the junction is blocked in that resource's queue or holder list)."""
    state = resource_lookup(entering.rid)
    if state.queue_entry(junction) is not None:
        return state.rid
    holder = state.holder_entry(junction)
    if holder is not None and holder.is_blocked:
        return state.rid
    return None


def select_victim(
    candidates: Sequence[VictimCandidate],
) -> VictimCandidate:
    """The minimum-cost candidate; ties prefer TDR-2 (no abort), then the
    smaller junction/victim id.  Raises ``ValueError`` on empty input."""
    if not candidates:
        raise ValueError("a deadlock cycle always has TDR candidates")

    def sort_key(candidate) -> Tuple[float, int, int]:
        prefer_reposition = 0 if candidate.kind == "reposition" else 1
        tid = (
            candidate.junction
            if candidate.kind == "reposition"
            else candidate.tid
        )
        return (candidate.cost, prefer_reposition, tid)

    return min(candidates, key=sort_key)


@dataclass
class Resolution:
    """Record of one resolved cycle — for reporting and experiments."""

    cycle: List[int]
    candidates: List[VictimCandidate] = field(default_factory=list)
    chosen: Optional[VictimCandidate] = None
