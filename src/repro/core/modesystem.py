"""Lock-mode systems as first-class objects, with the algebraic checks
the paper's correctness arguments rest on.

The paper fixes the five-mode MGL system, but nothing in H/W-TWBG or the
detection algorithm depends on those *particular* matrices — only on
structural properties (its reference [4] makes the same point for
"resource class independent" detection).  This module captures an
arbitrary ``(modes, Comp, Conv)`` triple and validates exactly the
assumptions the proofs use:

* ``Comp`` is **symmetric** and ``NL`` is compatible with everything —
  Theorem 3.1's case analysis and the ECR rules use conflicts in both
  directions interchangeably;
* ``Conv`` is a **join**: commutative, associative, idempotent, with
  ``NL`` as identity — the total mode is a fold, so it must not depend
  on fold order;
* **conflict monotonicity**: if ``a`` conflicts with ``c``, so does
  ``Conv(a, b)`` — granting via one total-mode comparison is only sound
  if joining modes never *removes* conflicts;
* ``Conv(a, b)`` is an upper bound of both arguments under the
  derived cover order.

Two instructive systems ship besides the paper's:
:func:`ulock_symmetric_system` (classic S/U/X update locks with
symmetric compatibility) **passes**, while :func:`ulock_asymmetric_system`
(DB2-style U locks, where a U holder admits new S readers but an S
holder blocks U requesters... or vice versa, depending on vendor) is
**rejected by the validator** — asymmetric compatibility breaks the
waited-by construction, which is worth knowing before porting the
algorithm to such a lock manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .modes import ALL_MODES, COMPATIBILITY, CONVERSION, LockMode


@dataclass
class ModeSystem:
    """An arbitrary lock-mode algebra.

    ``modes`` are opaque strings; ``nl`` names the no-lock identity;
    ``comp``/``conv`` are total tables over ``modes``.
    """

    name: str
    modes: Tuple[str, ...]
    nl: str
    comp: Dict[Tuple[str, str], bool] = field(repr=False)
    conv: Dict[Tuple[str, str], str] = field(repr=False)

    def compatible(self, a: str, b: str) -> bool:
        return self.comp[(a, b)]

    def convert(self, a: str, b: str) -> str:
        return self.conv[(a, b)]

    def covers(self, a: str, b: str) -> bool:
        """``a`` covers ``b`` iff joining changes nothing."""
        return self.convert(a, b) == a

    # -- bitmask compilation ----------------------------------------------
    #
    # The same fast lanes :mod:`repro.core.modes` derives for the paper's
    # system, compiled for an arbitrary algebra: a bit per mode (bit
    # position = declaration order in ``modes``), compatibility rows as
    # bit sets, and the join of every mode subset as a ``2^n`` table.
    # ``validate`` cross-checks the compilation against the dict tables,
    # so a system that passes can swap its scans for mask arithmetic the
    # way the scheduler does.

    def mode_index(self) -> Dict[str, int]:
        """Bit position of every mode (declaration order)."""
        return {mode: index for index, mode in enumerate(self.modes)}

    def compat_masks(self) -> Dict[str, int]:
        """``mode -> bit set`` of the modes each mode is compatible with."""
        index = self.mode_index()
        return {
            a: sum(
                1 << index[b] for b in self.modes if self.comp[(a, b)]
            )
            for a in self.modes
        }

    def conflict_masks(self) -> Dict[str, int]:
        """``mode -> bit set`` of the modes each mode conflicts with."""
        full = (1 << len(self.modes)) - 1
        return {
            mode: full & ~mask
            for mode, mask in self.compat_masks().items()
        }

    def sup_of_mask(self) -> Tuple[str, ...]:
        """``2^n`` table: entry ``mask`` is the ``Conv`` fold of the modes
        whose bits are set (fold order = declaration order; only
        order-independent when the join axioms hold — which ``validate``
        checks)."""
        table = []
        for mask in range(1 << len(self.modes)):
            result = self.nl
            for index, mode in enumerate(self.modes):
                if mask >> index & 1:
                    result = self.conv[(result, mode)]
            table.append(result)
        return tuple(table)

    # -- validation --------------------------------------------------------

    def validate(self) -> List[str]:
        """All violated assumptions, as human-readable strings."""
        problems: List[str] = []
        problems.extend(self._check_totality())
        if problems:
            return problems  # later checks would just KeyError
        problems.extend(self._check_compatibility_axioms())
        problems.extend(self._check_join_axioms())
        problems.extend(self._check_conflict_monotonicity())
        if not problems:
            # Only a lawful join makes the mask tables well-defined.
            problems.extend(self._check_mask_compilation())
        return problems

    def _check_totality(self) -> List[str]:
        problems = []
        for a in self.modes:
            for b in self.modes:
                if (a, b) not in self.comp:
                    problems.append("Comp({}, {}) undefined".format(a, b))
                joined = self.conv.get((a, b))
                if joined is None:
                    problems.append("Conv({}, {}) undefined".format(a, b))
                elif joined not in self.modes:
                    problems.append(
                        "Conv({}, {}) = {} is not a mode".format(a, b, joined)
                    )
        if self.nl not in self.modes:
            problems.append("identity {} is not a mode".format(self.nl))
        return problems

    def _check_compatibility_axioms(self) -> List[str]:
        problems = []
        for a in self.modes:
            for b in self.modes:
                if self.comp[(a, b)] != self.comp[(b, a)]:
                    problems.append(
                        "Comp not symmetric at ({}, {})".format(a, b)
                    )
            if not self.comp[(self.nl, a)]:
                problems.append(
                    "NL must be compatible with {}".format(a)
                )
        return problems

    def _check_join_axioms(self) -> List[str]:
        problems = []
        for a in self.modes:
            if self.conv[(a, a)] != a:
                problems.append("Conv not idempotent at {}".format(a))
            if self.conv[(self.nl, a)] != a:
                problems.append("NL not a Conv identity for {}".format(a))
            for b in self.modes:
                if self.conv[(a, b)] != self.conv[(b, a)]:
                    problems.append(
                        "Conv not commutative at ({}, {})".format(a, b)
                    )
                joined = self.conv[(a, b)]
                if not (self.covers(joined, a) and self.covers(joined, b)):
                    problems.append(
                        "Conv({}, {}) = {} is not an upper bound".format(
                            a, b, joined
                        )
                    )
                for c in self.modes:
                    if self.conv[(self.conv[(a, b)], c)] != self.conv[
                        (a, self.conv[(b, c)])
                    ]:
                        problems.append(
                            "Conv not associative at ({}, {}, {})".format(
                                a, b, c
                            )
                        )
        return problems

    def _check_conflict_monotonicity(self) -> List[str]:
        problems = []
        for a in self.modes:
            for b in self.modes:
                joined = self.conv[(a, b)]
                for c in self.modes:
                    if not self.comp[(a, c)] and self.comp[(joined, c)]:
                        problems.append(
                            "joining {} with {} loses the conflict with "
                            "{}".format(a, b, c)
                        )
        return problems

    def _check_mask_compilation(self) -> List[str]:
        """The compiled masks must reproduce the dict tables exactly:
        mask-compatibility equals ``Comp`` on every pair, and the
        ``sup_of_mask`` table equals the ``Conv`` fold of every subset."""
        problems = []
        index = self.mode_index()
        conflicts = self.conflict_masks()
        sups = self.sup_of_mask()
        for a in self.modes:
            for b in self.modes:
                masked = not (conflicts[a] >> index[b] & 1)
                if masked != self.comp[(a, b)]:
                    problems.append(
                        "mask compatibility disagrees with Comp at "
                        "({}, {})".format(a, b)
                    )
                joined = sups[(1 << index[a]) | (1 << index[b])]
                if joined != self.conv[(a, b)]:
                    problems.append(
                        "sup-of-mask disagrees with Conv at ({}, {}): "
                        "{} vs {}".format(a, b, joined, self.conv[(a, b)])
                    )
        return problems

    @property
    def is_valid(self) -> bool:
        return not self.validate()


def paper_system() -> ModeSystem:
    """The paper's six-mode system, from the live Tables 1 and 2."""
    names = tuple(mode.name for mode in ALL_MODES)
    comp = {
        (a.name, b.name): COMPATIBILITY[(a, b)]
        for a in ALL_MODES
        for b in ALL_MODES
    }
    conv = {
        (a.name, b.name): CONVERSION[(a, b)].name
        for a in ALL_MODES
        for b in ALL_MODES
    }
    return ModeSystem("paper-mgl", names, LockMode.NL.name, comp, conv)


def _table(rows: Dict[str, Dict[str, object]]) -> Dict[Tuple[str, str], object]:
    return {
        (a, b): value
        for a, columns in rows.items()
        for b, value in columns.items()
    }


def ulock_symmetric_system() -> ModeSystem:
    """S/U/X update locks with *symmetric* compatibility: U is
    compatible with S (both directions) and with nothing else.  A valid
    system — the paper's machinery ports directly."""
    t, f = True, False
    comp = _table({
        "NL": {"NL": t, "S": t, "U": t, "X": t},
        "S": {"NL": t, "S": t, "U": t, "X": f},
        "U": {"NL": t, "S": t, "U": f, "X": f},
        "X": {"NL": t, "S": f, "U": f, "X": f},
    })
    conv = _table({
        "NL": {"NL": "NL", "S": "S", "U": "U", "X": "X"},
        "S": {"NL": "S", "S": "S", "U": "U", "X": "X"},
        "U": {"NL": "U", "S": "U", "U": "U", "X": "X"},
        "X": {"NL": "X", "S": "X", "U": "X", "X": "X"},
    })
    return ModeSystem("ulock-symmetric", ("NL", "S", "U", "X"), "NL", comp, conv)


def ulock_asymmetric_system() -> ModeSystem:
    """DB2-flavored U locks: a U holder still admits S readers, but an S
    holder refuses new U requesters (or the converse — vendors differ).
    The asymmetry breaks the paper's assumptions; the validator says so.
    """
    t, f = True, False
    comp = _table({
        "NL": {"NL": t, "S": t, "U": t, "X": t},
        "S": {"NL": t, "S": t, "U": f, "X": f},  # S holder blocks U
        "U": {"NL": t, "S": t, "U": f, "X": f},  # U holder admits S
        "X": {"NL": t, "S": f, "U": f, "X": f},
    })
    conv = _table({
        "NL": {"NL": "NL", "S": "S", "U": "U", "X": "X"},
        "S": {"NL": "S", "S": "S", "U": "U", "X": "X"},
        "U": {"NL": "U", "S": "U", "U": "U", "X": "X"},
        "X": {"NL": "X", "S": "X", "U": "X", "X": "X"},
    })
    return ModeSystem("ulock-asymmetric", ("NL", "S", "U", "X"), "NL", comp, conv)
