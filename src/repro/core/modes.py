"""Lock modes, the compatibility matrix and the conversion matrix.

This module reproduces Tables 1 and 2 of the paper (Section 2):

* Table 1 — the *compatibility matrix* ``Comp``: two lock requests for the
  same resource by two different transactions are *compatible* if they can
  be granted concurrently.
* Table 2 — the *conversion matrix* ``Conv``: when a holder re-requests the
  same resource, the granted mode and the newly requested mode are combined
  into the mode the transaction eventually wants to hold.

The six modes are the classic multiple-granularity-locking modes of
Gray [11]: ``NL`` (no lock), ``IS`` (intention shared), ``IX`` (intention
exclusive), ``S`` (shared), ``SIX`` (shared + intention exclusive) and
``X`` (exclusive).

One transcription note: the scanned Table 1 in the source text reads
``Comp(S, S) = false``, but the paper's own Example 5.1 places two
transactions simultaneously in the holder list of a resource with granted
mode ``S`` each, which requires ``Comp(S, S) = true`` — the value the
standard Gray matrix assigns.  We therefore use the standard matrix; every
other entry agrees with the scanned table.

The paper's *total mode* (Section 2) and the conventional *group mode*
(Gray [11]) are both provided; the total mode folds blocked conversion
modes into the summary so that a single comparison decides grantability of
new queue requests (see :func:`total_mode` and experiment X5 in DESIGN.md).
"""

from __future__ import annotations

import enum
from typing import Iterable, Tuple


class LockMode(enum.IntEnum):
    """The five lock modes of the paper plus ``NL`` (no lock).

    The integer values order the modes by *exclusiveness* along the
    conversion lattice's longest chain (NL < IS < IX/S < SIX < X); they are
    an implementation convenience only — grantability decisions always go
    through :func:`compatible` / :func:`convert`, never through ``<``.
    """

    NL = 0
    IS = 1
    IX = 2
    S = 3
    SIX = 4
    X = 5

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_intention(self) -> bool:
        """True for the intention modes ``IS``, ``IX`` and ``SIX``."""
        return self in (LockMode.IS, LockMode.IX, LockMode.SIX)

    @property
    def grants_read(self) -> bool:
        """True if the mode by itself permits reading the resource."""
        return self in (LockMode.S, LockMode.SIX, LockMode.X)

    @property
    def grants_write(self) -> bool:
        """True if the mode by itself permits writing the resource."""
        return self is LockMode.X


#: All modes, in the row/column order of Tables 1 and 2.
ALL_MODES: Tuple[LockMode, ...] = (
    LockMode.NL,
    LockMode.IS,
    LockMode.IX,
    LockMode.SIX,
    LockMode.S,
    LockMode.X,
)

#: Modes a transaction can actually request (``NL`` is a non-request).
REQUESTABLE_MODES: Tuple[LockMode, ...] = (
    LockMode.IS,
    LockMode.IX,
    LockMode.S,
    LockMode.SIX,
    LockMode.X,
)

#: The modes a blocked conversion can be waiting for.  Theorem 3.1's proof
#: relies on a blocked mode being one of these (an ``IS`` request can never
#: block because ``IS`` conflicts only with ``X``, and a granted ``X``
#: holder forces the sole holder case).
BLOCKABLE_MODES: Tuple[LockMode, ...] = (
    LockMode.IX,
    LockMode.S,
    LockMode.SIX,
    LockMode.X,
)


def _build_compatibility() -> dict:
    """Build Table 1 as a dict keyed by ``(held, requested)``.

    ``True`` means the two modes can be granted concurrently.
    """
    t, f = True, False
    rows = {
        #                NL IS IX SIX  S  X
        LockMode.NL: (t, t, t, t, t, t),
        LockMode.IS: (t, t, t, t, t, f),
        LockMode.IX: (t, t, t, f, f, f),
        LockMode.SIX: (t, t, f, f, f, f),
        LockMode.S: (t, t, f, f, t, f),
        LockMode.X: (t, f, f, f, f, f),
    }
    table = {}
    columns = (
        LockMode.NL,
        LockMode.IS,
        LockMode.IX,
        LockMode.SIX,
        LockMode.S,
        LockMode.X,
    )
    for row_mode, values in rows.items():
        for col_mode, value in zip(columns, values):
            table[(row_mode, col_mode)] = value
    return table


def _build_conversion() -> dict:
    """Build Table 2 as a dict keyed by ``(granted, requested)``.

    ``Conv(granted, requested)`` is the mode the transaction eventually
    wants to hold; it is the least upper bound in the lock-mode lattice
    (``S`` and ``IX`` are incomparable, their join is ``SIX``).
    """
    NL, IS, IX, SIX, S, X = (
        LockMode.NL,
        LockMode.IS,
        LockMode.IX,
        LockMode.SIX,
        LockMode.S,
        LockMode.X,
    )
    rows = {
        #      NL   IS   IX   SIX  S    X
        NL: (NL, IS, IX, SIX, S, X),
        IS: (IS, IS, IX, SIX, S, X),
        IX: (IX, IX, IX, SIX, SIX, X),
        SIX: (SIX, SIX, SIX, SIX, SIX, X),
        S: (S, S, SIX, SIX, S, X),
        X: (X, X, X, X, X, X),
    }
    table = {}
    columns = (NL, IS, IX, SIX, S, X)
    for row_mode, values in rows.items():
        for col_mode, value in zip(columns, values):
            table[(row_mode, col_mode)] = value
    return table


#: Table 1 of the paper.  ``COMPATIBILITY[(a, b)]`` is ``Comp(a, b)``.
COMPATIBILITY = _build_compatibility()

#: Table 2 of the paper.  ``CONVERSION[(a, b)]`` is ``Conv(a, b)``.
CONVERSION = _build_conversion()


# ---------------------------------------------------------------------------
# Bitmask fast lanes.
#
# The dict matrices above are the oracle — the transcription of Tables 1
# and 2 that tests and ``ModeSystem.validate`` reason about.  Everything
# below is *derived* from them at import time so the hot path (grant
# checks, conversion checks, total-mode folds over whole holder lists)
# touches only tuple indexing and integer masks:
#
# * ``COMPAT_ROWS[a][b]`` / ``CONV_ROWS[a][b]`` — the same tables as flat
#   tuple-of-tuples indexed by the modes' integer values (an ``IntEnum``
#   indexes a tuple directly, skipping the tuple-of-two-keys hash of the
#   dict lookup);
# * ``mode_bit(m)`` / ``mask_of(modes)`` — a mode *set* as a 6-bit
#   integer;
# * ``COMPAT_MASKS[m]`` — the modes compatible with ``m`` as a bit set;
#   ``CONFLICT_MASKS[m]`` is its complement, so "is ``m`` compatible
#   with every mode in this group?" is ``CONFLICT_MASKS[m] & group == 0``
#   — one AND instead of a scan;
# * ``SUP_OF_MASK[mask]`` — the lattice join of every mode in ``mask``.
#   Because ``Conv`` is a join (commutative, associative, idempotent;
#   see :mod:`repro.core.modesystem`), the fold over a holder list equals
#   the join of the *set* of modes present, so a 64-entry table replaces
#   the per-entry ``Conv`` fold.
# ---------------------------------------------------------------------------

#: Number of modes (bit width of the mode-set masks).
MODE_COUNT = len(ALL_MODES)

#: Modes indexed by their integer value (``_MODES_BY_VALUE[int(m)] is m``).
_MODES_BY_VALUE: Tuple[LockMode, ...] = tuple(sorted(ALL_MODES))

#: ``COMPAT_ROWS[held][requested]`` — Table 1, tuple-indexed by value.
COMPAT_ROWS: Tuple[Tuple[bool, ...], ...] = tuple(
    tuple(COMPATIBILITY[(a, b)] for b in _MODES_BY_VALUE)
    for a in _MODES_BY_VALUE
)

#: ``CONV_ROWS[granted][requested]`` — Table 2, tuple-indexed by value.
CONV_ROWS: Tuple[Tuple[LockMode, ...], ...] = tuple(
    tuple(CONVERSION[(a, b)] for b in _MODES_BY_VALUE)
    for a in _MODES_BY_VALUE
)

#: Every mode bit set — the universe of the mode-set masks.
FULL_MASK = (1 << MODE_COUNT) - 1

#: ``COMPAT_MASKS[m]`` — bit ``b`` is set iff ``Comp(m, b)``.
COMPAT_MASKS: Tuple[int, ...] = tuple(
    sum(1 << int(b) for b in _MODES_BY_VALUE if COMPATIBILITY[(a, b)])
    for a in _MODES_BY_VALUE
)

#: ``CONFLICT_MASKS[m]`` — bit ``b`` is set iff ``m`` conflicts with ``b``.
CONFLICT_MASKS: Tuple[int, ...] = tuple(
    FULL_MASK & ~mask for mask in COMPAT_MASKS
)


def _build_sup_of_mask() -> Tuple[LockMode, ...]:
    table = []
    for mask in range(1 << MODE_COUNT):
        result = LockMode.NL
        for mode in _MODES_BY_VALUE:
            if mask >> int(mode) & 1:
                result = CONVERSION[(result, mode)]
        table.append(result)
    return tuple(table)


#: ``SUP_OF_MASK[mask]`` — the join (``Conv`` fold) of the modes in
#: ``mask``; ``SUP_OF_MASK[0]`` is ``NL``.
SUP_OF_MASK: Tuple[LockMode, ...] = _build_sup_of_mask()


def mode_bit(mode: LockMode) -> int:
    """The single-bit mask of ``mode`` (bit position = integer value)."""
    return 1 << mode


def mask_of(modes: Iterable[LockMode]) -> int:
    """The mode-set mask with the bit of every mode in ``modes`` set."""
    mask = 0
    for mode in modes:
        mask |= 1 << mode
    return mask


def modes_in_mask(mask: int) -> Tuple[LockMode, ...]:
    """The modes whose bits are set in ``mask``, in value order."""
    return tuple(
        mode for mode in _MODES_BY_VALUE if mask >> int(mode) & 1
    )


def mask_compatible(mask: int, mode: LockMode) -> bool:
    """True iff ``mode`` is compatible with *every* mode in ``mask``
    (one AND against the precomputed conflict mask)."""
    return not (CONFLICT_MASKS[mode] & mask)


def compatible(held: LockMode, requested: LockMode) -> bool:
    """``Comp(held, requested)`` — Table 1.

    Example from the paper: ``Comp(S, IS)`` is true but ``Comp(IX, SIX)``
    is false.
    """
    return COMPAT_ROWS[held][requested]


def convert(granted: LockMode, requested: LockMode) -> LockMode:
    """``Conv(granted, requested)`` — Table 2.

    Example from the paper: a transaction holding ``IX`` that re-requests
    ``S`` eventually wants ``SIX`` (``Conv(IX, S) == SIX``).
    """
    return CONV_ROWS[granted][requested]


def supremum(modes: Iterable[LockMode]) -> LockMode:
    """Fold :func:`convert` over ``modes`` (the lattice join of all of them).

    Returns ``NL`` for an empty iterable.
    """
    result = LockMode.NL
    for mode in modes:
        result = convert(result, mode)
    return result


def total_mode(entries: Iterable[Tuple[LockMode, LockMode]]) -> LockMode:
    """The paper's *total mode* of a holder list (Section 2).

    ``entries`` yields ``(granted_mode, blocked_mode)`` pairs, one per
    holder, in holder-list order.  The total mode is defined as::

        Conv(... Conv(Conv(gm1, bm1), gm2), bm2) ..., gmn), bmn)

    i.e. the join of every granted *and* blocked mode.  A new request is
    grantable against the resource exactly when it is compatible with the
    total mode, which makes the grantability check O(1) instead of a scan
    of the holder list (experiment X5 compares this with the group mode).
    """
    result = LockMode.NL
    for granted, blocked in entries:
        result = convert(convert(result, granted), blocked)
    return result


def group_mode(granted_modes: Iterable[LockMode]) -> LockMode:
    """The conventional *group mode* of Gray [11]: join of granted modes only.

    Unlike :func:`total_mode` it ignores blocked conversion modes, so a
    request judged compatible with the group mode may still have to wait
    behind a blocked upgrader; schedulers based on it must rescan the
    holder list.  Provided for the X5 ablation.
    """
    return supremum(granted_modes)


def parse_mode(text: str) -> LockMode:
    """Parse a mode name such as ``"IX"`` (case-insensitive) to a mode.

    Raises ``ValueError`` for unknown names.
    """
    try:
        return LockMode[text.strip().upper()]
    except KeyError:
        raise ValueError("unknown lock mode: {!r}".format(text)) from None


def stronger_or_equal(a: LockMode, b: LockMode) -> bool:
    """True if mode ``a`` covers mode ``b`` in the lattice.

    ``a`` covers ``b`` when converting ``a`` by ``b`` changes nothing,
    i.e. a holder of ``a`` already possesses every privilege of ``b``.
    """
    return convert(a, b) is a


#: Minimal intention mode required on an ancestor before locking a
#: descendant in the given mode (multiple granularity locking, Section 2's
#: "upward compatible with the MGL protocol").  Reads need ``IS``; writes
#: need ``IX``.
REQUIRED_PARENT_MODE = {
    LockMode.IS: LockMode.IS,
    LockMode.S: LockMode.IS,
    LockMode.IX: LockMode.IX,
    LockMode.SIX: LockMode.IX,
    LockMode.X: LockMode.IX,
}


def required_parent_mode(child_mode: LockMode) -> LockMode:
    """The weakest mode a transaction must hold on the parent resource
    before requesting ``child_mode`` on a child (MGL rule).

    Raises ``ValueError`` for ``NL`` (no lock is not requestable).
    """
    try:
        return REQUIRED_PARENT_MODE[child_mode]
    except KeyError:
        raise ValueError(
            "no parent mode defined for {!r}".format(child_mode)
        ) from None
