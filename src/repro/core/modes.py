"""Lock modes, the compatibility matrix and the conversion matrix.

This module reproduces Tables 1 and 2 of the paper (Section 2):

* Table 1 — the *compatibility matrix* ``Comp``: two lock requests for the
  same resource by two different transactions are *compatible* if they can
  be granted concurrently.
* Table 2 — the *conversion matrix* ``Conv``: when a holder re-requests the
  same resource, the granted mode and the newly requested mode are combined
  into the mode the transaction eventually wants to hold.

The six modes are the classic multiple-granularity-locking modes of
Gray [11]: ``NL`` (no lock), ``IS`` (intention shared), ``IX`` (intention
exclusive), ``S`` (shared), ``SIX`` (shared + intention exclusive) and
``X`` (exclusive).

One transcription note: the scanned Table 1 in the source text reads
``Comp(S, S) = false``, but the paper's own Example 5.1 places two
transactions simultaneously in the holder list of a resource with granted
mode ``S`` each, which requires ``Comp(S, S) = true`` — the value the
standard Gray matrix assigns.  We therefore use the standard matrix; every
other entry agrees with the scanned table.

The paper's *total mode* (Section 2) and the conventional *group mode*
(Gray [11]) are both provided; the total mode folds blocked conversion
modes into the summary so that a single comparison decides grantability of
new queue requests (see :func:`total_mode` and experiment X5 in DESIGN.md).
"""

from __future__ import annotations

import enum
from typing import Iterable, Tuple


class LockMode(enum.IntEnum):
    """The five lock modes of the paper plus ``NL`` (no lock).

    The integer values order the modes by *exclusiveness* along the
    conversion lattice's longest chain (NL < IS < IX/S < SIX < X); they are
    an implementation convenience only — grantability decisions always go
    through :func:`compatible` / :func:`convert`, never through ``<``.
    """

    NL = 0
    IS = 1
    IX = 2
    S = 3
    SIX = 4
    X = 5

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_intention(self) -> bool:
        """True for the intention modes ``IS``, ``IX`` and ``SIX``."""
        return self in (LockMode.IS, LockMode.IX, LockMode.SIX)

    @property
    def grants_read(self) -> bool:
        """True if the mode by itself permits reading the resource."""
        return self in (LockMode.S, LockMode.SIX, LockMode.X)

    @property
    def grants_write(self) -> bool:
        """True if the mode by itself permits writing the resource."""
        return self is LockMode.X


#: All modes, in the row/column order of Tables 1 and 2.
ALL_MODES: Tuple[LockMode, ...] = (
    LockMode.NL,
    LockMode.IS,
    LockMode.IX,
    LockMode.SIX,
    LockMode.S,
    LockMode.X,
)

#: Modes a transaction can actually request (``NL`` is a non-request).
REQUESTABLE_MODES: Tuple[LockMode, ...] = (
    LockMode.IS,
    LockMode.IX,
    LockMode.S,
    LockMode.SIX,
    LockMode.X,
)

#: The modes a blocked conversion can be waiting for.  Theorem 3.1's proof
#: relies on a blocked mode being one of these (an ``IS`` request can never
#: block because ``IS`` conflicts only with ``X``, and a granted ``X``
#: holder forces the sole holder case).
BLOCKABLE_MODES: Tuple[LockMode, ...] = (
    LockMode.IX,
    LockMode.S,
    LockMode.SIX,
    LockMode.X,
)


def _build_compatibility() -> dict:
    """Build Table 1 as a dict keyed by ``(held, requested)``.

    ``True`` means the two modes can be granted concurrently.
    """
    t, f = True, False
    rows = {
        #                NL IS IX SIX  S  X
        LockMode.NL: (t, t, t, t, t, t),
        LockMode.IS: (t, t, t, t, t, f),
        LockMode.IX: (t, t, t, f, f, f),
        LockMode.SIX: (t, t, f, f, f, f),
        LockMode.S: (t, t, f, f, t, f),
        LockMode.X: (t, f, f, f, f, f),
    }
    table = {}
    columns = (
        LockMode.NL,
        LockMode.IS,
        LockMode.IX,
        LockMode.SIX,
        LockMode.S,
        LockMode.X,
    )
    for row_mode, values in rows.items():
        for col_mode, value in zip(columns, values):
            table[(row_mode, col_mode)] = value
    return table


def _build_conversion() -> dict:
    """Build Table 2 as a dict keyed by ``(granted, requested)``.

    ``Conv(granted, requested)`` is the mode the transaction eventually
    wants to hold; it is the least upper bound in the lock-mode lattice
    (``S`` and ``IX`` are incomparable, their join is ``SIX``).
    """
    NL, IS, IX, SIX, S, X = (
        LockMode.NL,
        LockMode.IS,
        LockMode.IX,
        LockMode.SIX,
        LockMode.S,
        LockMode.X,
    )
    rows = {
        #      NL   IS   IX   SIX  S    X
        NL: (NL, IS, IX, SIX, S, X),
        IS: (IS, IS, IX, SIX, S, X),
        IX: (IX, IX, IX, SIX, SIX, X),
        SIX: (SIX, SIX, SIX, SIX, SIX, X),
        S: (S, S, SIX, SIX, S, X),
        X: (X, X, X, X, X, X),
    }
    table = {}
    columns = (NL, IS, IX, SIX, S, X)
    for row_mode, values in rows.items():
        for col_mode, value in zip(columns, values):
            table[(row_mode, col_mode)] = value
    return table


#: Table 1 of the paper.  ``COMPATIBILITY[(a, b)]`` is ``Comp(a, b)``.
COMPATIBILITY = _build_compatibility()

#: Table 2 of the paper.  ``CONVERSION[(a, b)]`` is ``Conv(a, b)``.
CONVERSION = _build_conversion()


def compatible(held: LockMode, requested: LockMode) -> bool:
    """``Comp(held, requested)`` — Table 1.

    Example from the paper: ``Comp(S, IS)`` is true but ``Comp(IX, SIX)``
    is false.
    """
    return COMPATIBILITY[(held, requested)]


def convert(granted: LockMode, requested: LockMode) -> LockMode:
    """``Conv(granted, requested)`` — Table 2.

    Example from the paper: a transaction holding ``IX`` that re-requests
    ``S`` eventually wants ``SIX`` (``Conv(IX, S) == SIX``).
    """
    return CONVERSION[(granted, requested)]


def supremum(modes: Iterable[LockMode]) -> LockMode:
    """Fold :func:`convert` over ``modes`` (the lattice join of all of them).

    Returns ``NL`` for an empty iterable.
    """
    result = LockMode.NL
    for mode in modes:
        result = convert(result, mode)
    return result


def total_mode(entries: Iterable[Tuple[LockMode, LockMode]]) -> LockMode:
    """The paper's *total mode* of a holder list (Section 2).

    ``entries`` yields ``(granted_mode, blocked_mode)`` pairs, one per
    holder, in holder-list order.  The total mode is defined as::

        Conv(... Conv(Conv(gm1, bm1), gm2), bm2) ..., gmn), bmn)

    i.e. the join of every granted *and* blocked mode.  A new request is
    grantable against the resource exactly when it is compatible with the
    total mode, which makes the grantability check O(1) instead of a scan
    of the holder list (experiment X5 compares this with the group mode).
    """
    result = LockMode.NL
    for granted, blocked in entries:
        result = convert(convert(result, granted), blocked)
    return result


def group_mode(granted_modes: Iterable[LockMode]) -> LockMode:
    """The conventional *group mode* of Gray [11]: join of granted modes only.

    Unlike :func:`total_mode` it ignores blocked conversion modes, so a
    request judged compatible with the group mode may still have to wait
    behind a blocked upgrader; schedulers based on it must rescan the
    holder list.  Provided for the X5 ablation.
    """
    return supremum(granted_modes)


def parse_mode(text: str) -> LockMode:
    """Parse a mode name such as ``"IX"`` (case-insensitive) to a mode.

    Raises ``ValueError`` for unknown names.
    """
    try:
        return LockMode[text.strip().upper()]
    except KeyError:
        raise ValueError("unknown lock mode: {!r}".format(text)) from None


def stronger_or_equal(a: LockMode, b: LockMode) -> bool:
    """True if mode ``a`` covers mode ``b`` in the lattice.

    ``a`` covers ``b`` when converting ``a`` by ``b`` changes nothing,
    i.e. a holder of ``a`` already possesses every privilege of ``b``.
    """
    return convert(a, b) is a


#: Minimal intention mode required on an ancestor before locking a
#: descendant in the given mode (multiple granularity locking, Section 2's
#: "upward compatible with the MGL protocol").  Reads need ``IS``; writes
#: need ``IX``.
REQUIRED_PARENT_MODE = {
    LockMode.IS: LockMode.IS,
    LockMode.S: LockMode.IS,
    LockMode.IX: LockMode.IX,
    LockMode.SIX: LockMode.IX,
    LockMode.X: LockMode.IX,
}


def required_parent_mode(child_mode: LockMode) -> LockMode:
    """The weakest mode a transaction must hold on the parent resource
    before requesting ``child_mode`` on a child (MGL rule).

    Raises ``ValueError`` for ``NL`` (no lock is not requestable).
    """
    try:
        return REQUIRED_PARENT_MODE[child_mode]
    except KeyError:
        raise ValueError(
            "no parent mode defined for {!r}".format(child_mode)
        ) from None
