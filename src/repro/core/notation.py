"""Parser and formatter for the paper's lock-table notation.

The paper displays lock-table states like::

    R1(SIX): Holder((T1, IX, SIX) (T2, IS, S) (T3, IX, NL) (T4, IS, NL))
             Queue((T5, IX) (T6, S) (T7, IX))

This module turns such strings into :class:`~repro.core.requests.ResourceState`
objects and back, so tests and examples can state scenarios in exactly the
paper's words.  Example 5.1 additionally abbreviates queue entries as
``T2(X)``; both spellings are accepted.

The parser is deliberately forgiving about whitespace and entry
separators (spaces or commas between parenthesised entries) but strict
about structure: a resource line must contain a resource name, an optional
total mode, a ``Holder(...)`` group and a ``Queue(...)`` group.
"""

from __future__ import annotations

import re
from typing import List

from .errors import NotationError
from .modes import LockMode, parse_mode
from .requests import HolderEntry, QueueEntry, ResourceState

_RESOURCE_RE = re.compile(
    r"""^\s*(?P<rid>\w+)\s*(?:\(\s*(?P<total>\w+)\s*\))?\s*:\s*
        Holder\s*\((?P<holders>.*?)\)\s*
        Queue\s*\((?P<queue>.*?)\)\s*$""",
    re.VERBOSE | re.DOTALL,
)

#: ``(T1, IX, SIX)`` — holder entry.
_HOLDER_ENTRY_RE = re.compile(
    r"\(\s*T?(?P<tid>\d+)\s*,\s*(?P<gm>\w+)\s*,\s*(?P<bm>\w+)\s*\)"
)

#: ``(T5, IX)`` — queue entry, or Example 5.1's short form ``T2(X)``.
_QUEUE_ENTRY_RE = re.compile(
    r"\(\s*T?(?P<tid>\d+)\s*,\s*(?P<bm>\w+)\s*\)"
    r"|T?(?P<tid2>\d+)\s*\(\s*(?P<bm2>\w+)\s*\)"
)


def parse_resource(text: str) -> ResourceState:
    """Parse one resource line in the paper's notation.

    The total mode in the heading, when present, is checked against the
    recomputed total of the parsed holder list; a mismatch raises
    :class:`NotationError` (it would mean the scenario is transcribed
    inconsistently).

    >>> state = parse_resource(
    ...     "R2(IS): Holder((T7, IS, NL)) "
    ...     "Queue((T8, X) (T9, IX) (T3, S) (T4, X))")
    >>> state.rid, state.total.name, len(state.queue)
    ('R2', 'IS', 4)
    """
    match = _RESOURCE_RE.match(text)
    if match is None:
        raise NotationError("not a resource line: {!r}".format(text))

    state = ResourceState(rid=match.group("rid"))
    for entry_match in _HOLDER_ENTRY_RE.finditer(match.group("holders")):
        state.holders.append(
            HolderEntry(
                tid=int(entry_match.group("tid")),
                granted=parse_mode(entry_match.group("gm")),
                blocked=parse_mode(entry_match.group("bm")),
            )
        )
    for entry_match in _QUEUE_ENTRY_RE.finditer(match.group("queue")):
        tid = entry_match.group("tid") or entry_match.group("tid2")
        mode = entry_match.group("bm") or entry_match.group("bm2")
        state.queue.append(QueueEntry(tid=int(tid), blocked=parse_mode(mode)))

    state.recompute_total()
    declared = match.group("total")
    if declared is not None:
        declared_mode = parse_mode(declared)
        if declared_mode is not state.total:
            raise NotationError(
                "declared total mode {} of {} disagrees with computed {}".format(
                    declared_mode.name, state.rid, state.total.name
                )
            )
    return state


def parse_table(text: str) -> List[ResourceState]:
    """Parse several resource lines (one per line; blank lines ignored).

    Lines are joined when a continuation does not start a new ``Rx...:``
    heading, so the two-line layout used in the paper works verbatim.
    """
    merged: List[str] = []
    heading = re.compile(r"^\s*\w+\s*(\(\s*\w+\s*\))?\s*:")
    for line in text.splitlines():
        if not line.strip():
            continue
        if heading.match(line) or not merged:
            merged.append(line)
        else:
            merged[-1] += " " + line
    return [parse_resource(line) for line in merged]


def format_resource(state: ResourceState) -> str:
    """Render a resource in the paper's notation (inverse of parsing)."""
    return str(state)


def format_table(states: List[ResourceState]) -> str:
    """Render several resources, one per line."""
    return "\n".join(format_resource(state) for state in states)


def mode_letter(mode: LockMode) -> str:
    """The mode's display name (alias kept for symmetry with parse_mode)."""
    return mode.name


def load_table(lock_table, text: str):
    """Install the resource states described by ``text`` into a live
    :class:`~repro.lockmgr.lock_table.LockTable`, updating its holder and
    blocked indexes.  Returns the lock table.

    This is how tests and benchmarks replay the paper's printed lock-table
    states verbatim; the result is indistinguishable from a table reached
    through real scheduler requests.
    """
    for state in parse_table(text):
        real = lock_table.resource(state.rid)
        if real.holders or real.queue:
            raise NotationError(
                "resource {} is already populated".format(state.rid)
            )
        real.holders = state.holders
        real.queue = state.queue
        real.recompute_total()  # resync the cached summaries too
        for holder in state.holders:
            lock_table.note_holder(holder.tid, state.rid)
            if holder.is_blocked:
                lock_table.note_blocked(holder.tid, state.rid, in_queue=False)
        for waiter in state.queue:
            lock_table.note_blocked(waiter.tid, state.rid, in_queue=True)
    return lock_table
