"""The periodic deadlock detection and resolution algorithm (Section 5).

The algorithm runs three steps over the lock table (RST) and a per-run
:class:`~repro.core.tst.TST`:

**Step 1 — initialization.**  Construct the H edges by ECR-1/ECR-2 for
every resource (W edges mirror the queues, which the scheduler maintains
continuously), and reset every transaction's ``ancestor``/``current``.

**Step 2 — cycle detection and victim selection.**  A directed walk is
started from every transaction in id order.  The walk descends along
``current`` edges, marking the path with ``ancestor`` pointers; meeting a
vertex whose ``ancestor`` is non-zero closes a cycle.  The cycle is read
back off the ancestor chain, its TDR candidates are costed
(:mod:`repro.core.victim`), the minimum-cost one is applied — TDR-1 adds
the victim to the *abortion-list* and kills its ``current``; TDR-2
repositions the resource queue (AV before ST), bumps the delayed
transactions' costs, records the resource on the *change-list* and kills
the AV members' ``current`` (they can no longer deadlock, Lemma 4.1) —
and the walk resumes at the vertex where the cycle was found.  Because
every resolution kills at least one cycle vertex, the number of cycles
searched (``c'``) never exceeds the number of transactions.

**Step 3 — confirmation.**  Victims are processed against the live table:
a victim that an earlier victim's release has already *granted* is spared
(Example 5.1 — it is no longer deadlocked, so aborting it would be
waste); otherwise all its requests are removed and the freed resources
swept.  Finally every change-list resource is swept, turning TDR-2
repositionings into actual grants.  The victims are examined newest
first, matching the paper's Example 5.1 walk-through (the later, inner
cycle's victim often supersedes the earlier one).

The run returns a :class:`DetectionResult` with the aborted and spared
transactions, every grant event, the per-cycle resolution records and the
instrumentation counters used by the complexity experiments (C1–C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..lockmgr import scheduler
from ..lockmgr.events import Granted, Repositioned
from ..lockmgr.lock_table import LockTable
from .errors import ReproError
from .hw_twbg import Edge
from .tst import OFF_PATH, ROOT, TST
from .victim import (
    AbortCandidate,
    CostTable,
    RepositionCandidate,
    Resolution,
    candidates_for_cycle,
    select_victim,
)


@dataclass
class DetectionStats:
    """Instrumentation counters for the complexity experiments.

    ``edges_examined`` counts every edge considered by the Step-2 walk
    (including re-examinations after a resolution); ``cycles_found`` is
    the paper's ``c'``.
    """

    transactions: int = 0
    edges_total: int = 0
    edges_examined: int = 0
    cycles_found: int = 0
    tdr1_applied: int = 0
    tdr2_applied: int = 0
    backtrack_steps: int = 0


@dataclass
class DetectionResult:
    """Outcome of one periodic detection-resolution run."""

    aborted: List[int] = field(default_factory=list)
    spared: List[int] = field(default_factory=list)
    grants: List[Granted] = field(default_factory=list)
    repositions: List[Repositioned] = field(default_factory=list)
    resolutions: List[Resolution] = field(default_factory=list)
    stats: DetectionStats = field(default_factory=DetectionStats)
    #: Set by the sharded manager's cross-shard pass (a
    #: :class:`repro.lockmgr.sharded.ShardedPass`); None for a run on a
    #: monolithic table.
    sharding: Optional[object] = None
    #: The Aborted-event reason the absorbing manager publishes for
    #: :attr:`aborted`.  Detector passes keep the default; block-time
    #: policies that abort outside a pass (the nowait lane) override it.
    abort_reason: str = "deadlock victim"

    @property
    def deadlock_found(self) -> bool:
        """True when Step 2 resolved at least one cycle."""
        return bool(self.resolutions)

    @property
    def abort_free(self) -> bool:
        """True when every found deadlock was resolved without any abort
        (the paper's headline TDR-2 feature)."""
        return self.deadlock_found and not self.aborted


class PeriodicDetector:
    """Runs the periodic-detection-resolution algorithm on a lock table.

    Reusable: call :meth:`run` once per period.  The cost table persists
    across runs so TDR-2 delay penalties accumulate as the paper intends.
    """

    def __init__(
        self,
        table: LockTable,
        costs: Optional[CostTable] = None,
        allow_tdr2: bool = True,
    ) -> None:
        self.table = table
        self.costs = costs if costs is not None else CostTable()
        #: Ablation switch (experiment A2): with TDR-2 disabled every
        #: deadlock costs an abort.
        self.allow_tdr2 = allow_tdr2

    def run(self) -> DetectionResult:
        """Execute Steps 1–3 and return the run's outcome."""
        run = _DetectionRun(self.table, self.costs, allow_tdr2=self.allow_tdr2)
        return run.execute()


class _DetectionRun:
    """State of a single detector activation (one period).

    ``roots`` restricts the Step-2 walk to the given start vertices (used
    by the continuous companion detector, which only searches from the
    transaction that just blocked); the periodic algorithm walks from
    every transaction.
    """

    def __init__(
        self,
        table: LockTable,
        costs: CostTable,
        roots: Optional[List[int]] = None,
        allow_tdr2: bool = True,
        observer=None,
    ) -> None:
        self._table = table
        self._costs = costs
        self._roots = roots
        self._allow_tdr2 = allow_tdr2
        self._tst: Optional[TST] = None
        self._abortion_list: List[int] = []
        self._change_list: List[str] = []
        self.result = DetectionResult()
        #: Optional callable ``observer(event, **info)`` invoked at every
        #: step of the Step-2 walk and Step-3 confirmation — the tracing
        #: facility of :mod:`repro.core.trace`.
        self._observer = observer

    def _emit(self, event: str, **info) -> None:
        if self._observer is not None:
            self._observer(event, **info)

    def execute(self) -> DetectionResult:
        self._step1_initialize()
        self._step2_detect_and_select()
        self._step3_confirm()
        return self.result

    # -- Step 1 -----------------------------------------------------------

    def _step1_initialize(self) -> None:
        self._tst = TST(self._table)
        stats = self.result.stats
        stats.transactions = len(self._tst.entries)
        stats.edges_total = sum(
            len(entry.waited) for entry in self._tst.entries.values()
        )

    # -- Step 2 -----------------------------------------------------------

    def _step2_detect_and_select(self) -> None:
        tst = self._tst
        entries = tst.entries
        roots = self._roots if self._roots is not None else tst.tids()
        for root in roots:
            if root not in entries:
                continue
            self._emit("root", tid=root)
            entries[root].ancestor = ROOT
            v = root
            while v != ROOT:
                record = entries[v]
                if record.current is None:
                    parent = record.ancestor
                    record.ancestor = OFF_PATH
                    self.result.stats.backtrack_steps += 1
                    self._emit("backtrack", tid=v, parent=parent)
                    v = parent
                    continue
                edge = record.waited[record.current]
                self.result.stats.edges_examined += 1
                target = edge.target
                self._emit("examine", tid=v, target=target, label=edge.label)
                if target == 0 or entries[target].current is None:
                    record.advance()
                elif entries[target].ancestor != OFF_PATH:
                    self._emit("cycle-found", tid=v, closes=target)
                    self._victim_selection(v, target)
                    v = target
                else:
                    entries[target].ancestor = v
                    self._emit("descend", tid=v, target=target)
                    v = target

    def _victim_selection(self, v: int, w: int) -> None:
        """A cycle was closed by the edge ``v -> w`` (``w`` on the current
        path).  Read the cycle off the ancestor chain, apply TDR with the
        minimum-cost candidate, clear the backtracked ancestors."""
        entries = self._tst.entries
        chain = [v]
        walk = v
        while walk != w:
            walk = entries[walk].ancestor
            if walk in (OFF_PATH, ROOT) and walk != w:
                raise ReproError(
                    "ancestor chain from T{} broke before reaching "
                    "T{}".format(v, w)
                )
            chain.append(walk)
        chain.reverse()  # cycle order: w, ..., v

        cycle_edges = self._chain_edges(chain)
        candidates = candidates_for_cycle(
            cycle_edges, self._table.existing, self._costs
        )
        if not self._allow_tdr2:
            candidates = [
                c for c in candidates if isinstance(c, AbortCandidate)
            ]
        chosen = select_victim(candidates)
        self.result.stats.cycles_found += 1
        self.result.resolutions.append(
            Resolution(cycle=list(chain), candidates=candidates, chosen=chosen)
        )

        self._emit("victim", cycle=list(chain), chosen=chosen)
        if isinstance(chosen, AbortCandidate):
            self._apply_tdr1(chosen)
        else:
            self._apply_tdr2(chosen)

        for tid in chain:
            if tid != w:
                entries[tid].ancestor = OFF_PATH

    def _chain_edges(self, chain: List[int]) -> List[Edge]:
        """The edge objects along the cycle ``chain`` — each chain
        vertex's ``current`` edge (the walk never advances ``current``
        when descending, so it still points at the taken edge)."""
        entries = self._tst.entries
        edges: List[Edge] = []
        for tid in chain:
            tst_edge = entries[tid].current_edge()
            if tst_edge is None:  # pragma: no cover - walk invariant
                raise ReproError(
                    "cycle vertex T{} has no current edge".format(tid)
                )
            edges.append(
                Edge(
                    source=tid,
                    target=tst_edge.target,
                    label=tst_edge.label,
                    rid=tst_edge.rid,
                    lock=tst_edge.lock,
                )
            )
        return edges

    def _apply_tdr1(self, chosen: AbortCandidate) -> None:
        if chosen.tid in self._abortion_list:  # pragma: no cover
            raise ReproError(
                "T{} selected as victim twice".format(chosen.tid)
            )
        self._tst.entries[chosen.tid].kill()
        self._abortion_list.append(chosen.tid)
        self.result.stats.tdr1_applied += 1

    def _apply_tdr2(self, chosen: RepositionCandidate) -> None:
        scheduler.reposition_queue(
            self._table, chosen.rid, list(chosen.av), list(chosen.st)
        )
        self._tst.retarget_queue_edges(chosen.rid)
        for tid in chosen.st:
            self._costs.apply_delay_penalty(tid)
        for tid in chosen.av:
            self._tst.entries[tid].kill()
        self._change_list.append(chosen.rid)
        self.result.stats.tdr2_applied += 1
        self.result.repositions.append(
            Repositioned(rid=chosen.rid, delayed=tuple(chosen.st))
        )

    # -- Step 3 -----------------------------------------------------------

    def _step3_confirm(self) -> None:
        granted_tids: Set[int] = set()
        for tid in reversed(self._abortion_list):
            if tid in granted_tids:
                self._emit("spare", tid=tid)
                self.result.spared.append(tid)
                continue
            self._emit("abort", tid=tid)
            events = scheduler.release_all(self._table, tid)
            self.result.grants.extend(events)
            granted_tids.update(event.tid for event in events)
            self.result.aborted.append(tid)
            self._costs.forget(tid)
        for rid in self._change_list:
            if rid in self._table:
                events = scheduler.sweep(self._table, rid)
                self.result.grants.extend(events)
                granted_tids.update(event.tid for event in events)


def detect_once(
    table: LockTable, costs: Optional[CostTable] = None
) -> DetectionResult:
    """Convenience wrapper: one periodic detection-resolution pass."""
    return PeriodicDetector(table, costs).run()
