"""Serialization of lock-table state to and from plain dictionaries.

Lets applications snapshot a lock manager (debug dumps, golden tests,
cross-process inspection) and rebuild an identical table later.  The
format is intentionally boring JSON-ready data::

    {"resources": [
        {"rid": "R1",
         "total": "SIX",
         "holders": [{"tid": 1, "granted": "IX", "blocked": "SIX"}, ...],
         "queue": [{"tid": 5, "mode": "IX"}, ...]},
        ...]}

``loads``/``dumps`` wrap the dict functions with ``json``.  Round-trips
are exact: ``table_from_dict(table_to_dict(t))`` reproduces every holder,
queue entry, total mode and index (verified by property tests).

Dumps carry a versioned envelope (``{"v": 1, ...}``) so snapshots that
travel over the wire (:mod:`repro.service`) or live on disk stay
forward-compatible: a reader meeting a version it does not understand
raises a clear :class:`ReproError` instead of misparsing.  Envelopes
without a ``"v"`` key are accepted as version 1 (pre-versioning dumps).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..lockmgr.lock_table import LockTable
from .errors import ReproError
from .modes import parse_mode
from .requests import HolderEntry, QueueEntry

#: Version stamped into every dump's envelope.
FORMAT_VERSION = 1


def check_version(data: Dict[str, Any], what: str = "dump") -> int:
    """Validate the envelope version of ``data``.

    Returns the (defaulted) version.  Raises :class:`ReproError` when the
    envelope declares a version this reader does not understand.
    """
    version = data.get("v", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ReproError(
            "unsupported {} version {!r} (this reader understands "
            "version {})".format(what, version, FORMAT_VERSION)
        )
    return version


def state_to_dict(state) -> Dict[str, Any]:
    """One :class:`~repro.core.requests.ResourceState` as a JSON-ready
    dict — the per-resource entry of a :func:`table_to_dict` dump, also
    used by shard snapshots that serialize states without a table."""
    return {
        "rid": state.rid,
        "total": state.total.name,
        "holders": [
            {
                "tid": holder.tid,
                "granted": holder.granted.name,
                "blocked": holder.blocked.name,
            }
            for holder in state.holders
        ],
        "queue": [
            {"tid": waiter.tid, "mode": waiter.blocked.name}
            for waiter in state.queue
        ],
    }


def table_to_dict(table: LockTable) -> Dict[str, Any]:
    """Dump a lock table to a JSON-ready dict."""
    return {
        "v": FORMAT_VERSION,
        "resources": [state_to_dict(state) for state in table.resources()],
    }


def table_from_dict(data: Dict[str, Any]) -> LockTable:
    """Rebuild a lock table (including indexes) from a dump.

    Raises :class:`ReproError` when the dump's envelope declares an
    unknown version, or when its recorded total mode does not match the
    recomputed one — a corrupted or hand-edited dump.
    """
    check_version(data, "lock-table dump")
    table = LockTable()
    for entry in data.get("resources", ()):
        state = table.resource(entry["rid"])
        for holder in entry.get("holders", ()):
            record = HolderEntry(
                tid=int(holder["tid"]),
                granted=parse_mode(holder["granted"]),
                blocked=parse_mode(holder.get("blocked", "NL")),
            )
            state.holders.append(record)
            table.note_holder(record.tid, state.rid)
            if record.is_blocked:
                table.note_blocked(record.tid, state.rid, in_queue=False)
        for waiter in entry.get("queue", ()):
            record = QueueEntry(
                tid=int(waiter["tid"]), blocked=parse_mode(waiter["mode"])
            )
            state.queue.append(record)
            table.note_blocked(record.tid, state.rid, in_queue=True)
        state.recompute_total()
        declared = entry.get("total")
        if declared is not None and parse_mode(declared) is not state.total:
            raise ReproError(
                "dump of {} declares total {} but holders give {}".format(
                    state.rid, declared, state.total.name
                )
            )
    return table


def dumps(table: LockTable, indent: int = 2) -> str:
    """Lock table as a JSON string."""
    return json.dumps(table_to_dict(table), indent=indent, sort_keys=True)


def loads(text: str) -> LockTable:
    """Lock table from a JSON string."""
    return table_from_dict(json.loads(text))
