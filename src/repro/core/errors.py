"""Exception hierarchy for the reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch the whole family with one clause.  Errors that a
transaction-processing application is expected to handle as part of normal
operation (deadlock aborts) derive from :class:`TransactionAborted`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LockTableError(ReproError):
    """An operation was inconsistent with the lock-table state.

    Examples: releasing a lock the transaction does not hold, or a blocked
    transaction issuing a second request (the sequential transaction model
    of the paper allows at most one outstanding request per transaction).
    """


class UnknownResourceError(LockTableError):
    """A resource identifier is not present in the lock table."""


class UnknownTransactionError(ReproError):
    """A transaction identifier is not known to the manager."""


class TransactionStateError(ReproError):
    """A transaction was used in a state that forbids the operation.

    For example issuing requests after commit, or committing while
    blocked.
    """


class TransactionAborted(ReproError):
    """The transaction was aborted (victim of deadlock resolution).

    Attributes
    ----------
    tid:
        Identifier of the aborted transaction.
    reason:
        Human-readable reason, e.g. ``"deadlock victim"``.
    """

    def __init__(self, tid: int, reason: str = "deadlock victim") -> None:
        super().__init__("transaction {} aborted: {}".format(tid, reason))
        self.tid = tid
        self.reason = reason


class ProtocolViolation(ReproError):
    """A locking-protocol rule was violated.

    Raised by the strict-2PL enforcement (lock released before commit) and
    by the MGL protocol (locking a child without the required intention
    mode on its ancestors).
    """


class NotationError(ReproError):
    """The paper-notation parser met malformed input."""
