"""RST/TST — the detector's internal data structures (Section 5).

The paper implements the scheduling policy and the H/W-TWBG over two
tables:

* **RST** (resource status table) — one entry per locked resource with
  ``rid``, total mode, queue and holder list.  In this library the live
  :class:`~repro.lockmgr.lock_table.LockTable` *is* the RST; nothing is
  duplicated.
* **TST** (transaction status table) — one entry per transaction with
  ``ancestor``, ``pr``, ``waited`` and ``current``:

  - ``waited`` holds the outgoing H/W-TWBG edges of the transaction as
    ``(lock, tid)`` records.  An H edge ``Ti -> Tj`` is ``(NL, Tj)``;
    the single W edge of a queued transaction carries its blocked mode
    and points to its queue successor (0 for the last queue member).
    **The W edge, if any, sits at the front of the list** — the paper
    relies on this ordering in Example 5.1 to detect the longer cycle
    first.
  - ``pr`` is the resource the transaction is blocked at;
  - ``ancestor`` marks the directed walk's current path (0 = off path,
    -1 = walk root, otherwise the parent transaction id);
  - ``current`` is the next edge to examine (``None`` once exhausted or
    once the transaction was resolved away).

W edges mirror the queues, which the scheduler maintains continuously;
H edges are materialized only while the periodic detector runs (Step 1)
and conceptually dropped afterwards (Step 3) — here the whole TST is a
per-run object, so dropping is implicit.

One representational extension over the paper: each edge also records the
resource id it came from, which lets TDR-2 retarget exactly the W edges
of the repositioned queue in O(queue length).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..lockmgr.lock_table import LockTable
from .hw_twbg import resource_edges, H_LABEL
from .modes import LockMode
from .requests import ResourceState

#: ``ancestor`` sentinel values.
OFF_PATH = 0
ROOT = -1


@dataclass
class TSTEdge:
    """One ``waited`` record: ``(lock, tid)`` plus the source resource.

    ``lock`` is ``NL`` for H edges and the waiter's blocked mode for W
    edges (the paper's encoding — the label is derived from this field).
    ``target`` is 0 for the W edge of a queue's last member.
    """

    lock: LockMode
    target: int
    rid: str

    @property
    def is_w(self) -> bool:
        return self.lock is not LockMode.NL

    @property
    def label(self) -> str:
        return "W" if self.is_w else "H"

    def __str__(self) -> str:
        return "({}, {})".format(
            self.lock.name, "T{}".format(self.target) if self.target else "0"
        )


@dataclass
class TSTEntry:
    """One transaction's row in the TST."""

    tid: int
    ancestor: int = OFF_PATH
    pr: Optional[str] = None
    in_queue: bool = False
    waited: List[TSTEdge] = field(default_factory=list)
    current: Optional[int] = None

    def reset_walk(self) -> None:
        """Initialize ``ancestor``/``current`` for Step 2."""
        self.ancestor = OFF_PATH
        self.current = 0 if self.waited else None

    def current_edge(self) -> Optional[TSTEdge]:
        if self.current is None:
            return None
        return self.waited[self.current]

    def advance(self) -> None:
        """Move ``current`` to the next edge (``None`` when exhausted)."""
        if self.current is None:
            return
        self.current += 1
        if self.current >= len(self.waited):
            self.current = None

    def kill(self) -> None:
        """Mark the transaction resolved away (``current := nil``)."""
        self.current = None

    def w_edge(self) -> Optional[TSTEdge]:
        """The transaction's W edge (front of ``waited``), if queued."""
        if self.waited and self.waited[0].is_w:
            return self.waited[0]
        return None

    def __str__(self) -> str:
        edges = " ".join(str(edge) for edge in self.waited)
        return "T{}: pr={} waited=[{}]".format(
            self.tid, self.pr or "-", edges
        )


class TST:
    """The transaction status table for one detector run.

    Step 1 of the periodic algorithm: W edges are copied from the queues
    (they are "present all the time"), H edges are constructed by ECR-1
    and ECR-2 for every resource in the RST, and the walk variables are
    initialized.
    """

    def __init__(self, table: LockTable) -> None:
        self._table = table
        self.entries: Dict[int, TSTEntry] = {}
        for state in table.resources():
            self._load_resource(state)
        for entry in self.entries.values():
            entry.reset_walk()

    # -- construction -------------------------------------------------------

    def entry(self, tid: int) -> TSTEntry:
        record = self.entries.get(tid)
        if record is None:
            record = TSTEntry(tid=tid)
            self.entries[tid] = record
        return record

    def _load_resource(self, state: ResourceState) -> None:
        """Install the W edges, ``pr`` markers and ECR H edges of one
        resource.  W edges go to the *front* of each waited list."""
        for position, waiter in enumerate(state.queue):
            record = self.entry(waiter.tid)
            record.pr = state.rid
            record.in_queue = True
            successor = (
                state.queue[position + 1].tid
                if position + 1 < len(state.queue)
                else 0
            )
            record.waited.insert(
                0, TSTEdge(waiter.blocked, successor, state.rid)
            )
        for holder in state.holders:
            record = self.entry(holder.tid)
            if holder.is_blocked:
                record.pr = state.rid
                record.in_queue = False
        for edge in resource_edges(state):
            if edge.label != H_LABEL:
                continue  # W edges were installed from the queue above.
            self.entry(edge.source).waited.append(
                TSTEdge(LockMode.NL, edge.target, edge.rid)
            )

    # -- queries --------------------------------------------------------------

    def tids(self) -> List[int]:
        """All transaction ids, ascending (the paper's ``for v := 1 to N``)."""
        return sorted(self.entries)

    def resource(self, rid: str) -> ResourceState:
        """RST lookup (delegates to the live lock table)."""
        return self._table.existing(rid)

    # -- TDR-2 maintenance ------------------------------------------------------

    def retarget_queue_edges(self, rid: str) -> None:
        """Re-point the W edges of ``rid``'s queue members after a TDR-2
        repositioning, so the TST keeps matching the queue.  The edge
        records are updated in place; ``current`` indexes stay valid."""
        state = self.resource(rid)
        for position, waiter in enumerate(state.queue):
            record = self.entries[waiter.tid]
            w_edge = record.w_edge()
            if w_edge is None:  # pragma: no cover - defensive
                continue
            w_edge.target = (
                state.queue[position + 1].tid
                if position + 1 < len(state.queue)
                else 0
            )

    # -- presentation -------------------------------------------------------------

    def __str__(self) -> str:
        return "\n".join(str(self.entries[tid]) for tid in self.tids())
