"""The continuous companion detector (the paper's reference [17]).

The paper presents its periodic algorithm "as a companion of the
continuous one": instead of sweeping all transactions every period, the
continuous scheme checks for deadlock *whenever a lock request cannot be
granted immediately*, searching only from the transaction that just
blocked.  Any cycle must pass through that transaction (every other cycle
already existed and was resolved when ITS last edge appeared), so one
rooted walk suffices.

The implementation reuses the periodic machinery — same TST encoding,
same TDR candidates, same Step-3 confirmation — with the Step-2 walk
restricted to the blocked transaction.  That keeps the two detectors
byte-for-byte comparable for the period-sweep experiment (A3): the
continuous detector pays graph construction on every block but resolves
deadlocks with zero latency; the periodic one amortizes construction but
leaves deadlocked transactions stalled for up to a period.
"""

from __future__ import annotations

from typing import Optional

from ..lockmgr.lock_table import LockTable
from .detection import DetectionResult, _DetectionRun
from .victim import CostTable


class ContinuousDetector:
    """Detect-at-block-time deadlock detection over H/W-TWBG."""

    def __init__(
        self, table: LockTable, costs: Optional[CostTable] = None
    ) -> None:
        self.table = table
        self.costs = costs if costs is not None else CostTable()

    def on_block(self, tid: int) -> DetectionResult:
        """Run a rooted detection pass for a transaction that just
        blocked.  Returns the (possibly empty) resolution outcome."""
        run = _DetectionRun(self.table, self.costs, roots=[tid])
        return run.execute()
