"""Batched deadlock detection — between periodic and continuous.

The paper's two drivers sit at the ends of a spectrum: the periodic
algorithm walks from *every* transaction each period, the continuous
companion walks from the *one* transaction that just blocked, on every
block.  A batched driver is the standard middle ground: remember which
transactions blocked since the last pass and, when flushed (by a timer
or a batch-size threshold), run one pass rooted at exactly those
transactions.

Correctness follows from the same argument as the continuous case: every
cycle that appeared since the last flush contains at least one edge that
appeared with some block event, so walking from the recorded blockers
finds it.  Cost: one TST build per flush (like one period), but Step 2
touches only the subgraphs reachable from actual waiters instead of all
n roots.

(One caveat shared with the continuous detector: a cycle formed purely
by a *grant* reshuffle is only found once some root reaches it — see the
note in :mod:`repro.baselines.elmagarmid`; the periodic all-roots walk
has no such blind spot.)
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..lockmgr.lock_table import LockTable
from .detection import DetectionResult, _DetectionRun
from .victim import CostTable


class BatchedDetector:
    """Accumulate blocked transactions; resolve them in one rooted pass."""

    def __init__(
        self,
        table: LockTable,
        costs: Optional[CostTable] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        self.table = table
        self.costs = costs if costs is not None else CostTable()
        #: Flush automatically once this many distinct transactions have
        #: blocked (None: only explicit flushes).
        self.batch_size = batch_size
        self._pending: Set[int] = set()
        self.flushes = 0

    def on_block(self, tid: int) -> Optional[DetectionResult]:
        """Record a block; flush if the batch threshold is reached.

        Returns the flush result when one ran, else None.
        """
        self._pending.add(tid)
        if self.batch_size is not None and len(self._pending) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> DetectionResult:
        """One detection pass rooted at every recorded blocker."""
        roots = sorted(self._pending)
        self._pending.clear()
        self.flushes += 1
        run = _DetectionRun(self.table, self.costs, roots=roots)
        return run.execute()

    @property
    def pending(self) -> List[int]:
        """Blockers recorded since the last flush."""
        return sorted(self._pending)
