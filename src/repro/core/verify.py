"""Invariant verification for lock tables.

A production lock manager needs a way to assert its own consistency —
in tests, after crash recovery, or behind a debug flag.  This module
checks every structural invariant the paper's algorithms rely on and
returns human-readable violations instead of crashing:

* cached total mode equals the recomputed conversion fold;
* the memoized queue summaries (per-mode counts, granted/blocked group
  masks, AV-prefix boundary) equal a from-scratch rescan;
* granted modes of co-holders are pairwise compatible (lock safety);
* blocked conversions form a prefix of each holder list (UPR);
* blocked and queued modes are requestable (never ``NL``);
* Axiom 1 — no transaction waits in more than one place;
* the table's transaction-side indexes agree with the resource states;
* no granted-but-also-queued transaction (a holder re-request is a
  conversion, never a queue entry).

``verify_table`` returns a list of :class:`Violation`;
``assert_consistent`` raises on the first problem (handy in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..lockmgr.lock_table import LockTable
from .errors import ReproError
from .modes import MODE_COUNT, LockMode, compatible, total_mode


@dataclass(frozen=True)
class Violation:
    """One consistency violation: which rule, where, and what we saw."""

    rule: str
    rid: Optional[str]
    tid: Optional[int]
    detail: str

    def __str__(self) -> str:
        place = []
        if self.rid is not None:
            place.append(self.rid)
        if self.tid is not None:
            place.append("T{}".format(self.tid))
        return "[{}] {}: {}".format(self.rule, "/".join(place) or "-", self.detail)


class InconsistentTableError(ReproError):
    """Raised by :func:`assert_consistent` with all violations attached."""

    def __init__(self, violations: List[Violation]) -> None:
        super().__init__(
            "lock table inconsistent: "
            + "; ".join(str(v) for v in violations)
        )
        self.violations = violations


def verify_table(table: LockTable) -> List[Violation]:
    """Check every invariant; returns an empty list when consistent."""
    violations: List[Violation] = []
    waits: Dict[int, List[str]] = {}

    for state in table.resources():
        rid = state.rid

        expected_total = total_mode(
            (holder.granted, holder.blocked) for holder in state.holders
        )
        if state.total is not expected_total:
            violations.append(Violation(
                "total-mode", rid, None,
                "cached {} but recomputed {}".format(
                    state.total.name, expected_total.name),
            ))

        violations.extend(_verify_summaries(state))

        for index, first in enumerate(state.holders):
            for second in state.holders[index + 1:]:
                if not compatible(first.granted, second.granted):
                    violations.append(Violation(
                        "lock-safety", rid, first.tid,
                        "granted {} incompatible with T{}'s granted "
                        "{}".format(first.granted.name, second.tid,
                                    second.granted.name),
                    ))

        seen_unblocked = False
        for holder in state.holders:
            if holder.is_blocked and seen_unblocked:
                violations.append(Violation(
                    "blocked-prefix", rid, holder.tid,
                    "blocked conversion after an unblocked holder",
                ))
            if not holder.is_blocked:
                seen_unblocked = True
            if holder.granted is LockMode.NL:
                violations.append(Violation(
                    "holder-mode", rid, holder.tid, "granted mode is NL",
                ))
            if holder.is_blocked:
                waits.setdefault(holder.tid, []).append(rid)

        holder_tids = {holder.tid for holder in state.holders}
        for waiter in state.queue:
            if waiter.blocked is LockMode.NL:
                violations.append(Violation(
                    "queue-mode", rid, waiter.tid, "queued mode is NL",
                ))
            if waiter.tid in holder_tids:
                violations.append(Violation(
                    "holder-queued", rid, waiter.tid,
                    "appears in both holder list and queue of the same "
                    "resource (re-requests must be conversions)",
                ))
            waits.setdefault(waiter.tid, []).append(rid)

    for tid, places in waits.items():
        if len(places) > 1:
            violations.append(Violation(
                "axiom-1", None, tid,
                "waits at {} simultaneously".format(", ".join(places)),
            ))
        indexed = table.blocked_at(tid)
        if indexed != places[0] and len(places) == 1:
            violations.append(Violation(
                "index-blocked", places[0], tid,
                "state says blocked here but index says {!r}".format(indexed),
            ))

    for tid in table.blocked_tids():
        if tid not in waits:
            violations.append(Violation(
                "index-stale", None, tid,
                "index lists the transaction as blocked but no state "
                "shows it waiting",
            ))

    for state in table.resources():
        for holder in state.holders:
            if state.rid not in table.held_by(holder.tid):
                violations.append(Violation(
                    "index-held", state.rid, holder.tid,
                    "holder not present in the held-by index",
                ))

    return violations


def _verify_summaries(state) -> List[Violation]:
    """Cross-check the state's memoized queue summaries (per-mode
    counts, group masks, AV-prefix boundary) against a from-scratch
    rescan — the incremental invalidation is the risky part of the
    caching, so it gets its own oracle."""
    violations: List[Violation] = []
    rid = state.rid
    summary = state.summary_snapshot()

    granted = [0] * MODE_COUNT
    blocked = [0] * MODE_COUNT
    for holder in state.holders:
        granted[holder.granted] += 1
        if holder.is_blocked:
            blocked[holder.blocked] += 1
    if summary["granted_counts"] != tuple(granted):
        violations.append(Violation(
            "cache-granted-counts", rid, None,
            "cached {} but rescanned {}".format(
                summary["granted_counts"], tuple(granted)),
        ))
    if summary["blocked_counts"] != tuple(blocked):
        violations.append(Violation(
            "cache-blocked-counts", rid, None,
            "cached {} but rescanned {}".format(
                summary["blocked_counts"], tuple(blocked)),
        ))
    granted_mask = sum(
        1 << mode for mode, count in enumerate(granted) if count
    )
    blocked_mask = sum(
        1 << mode for mode, count in enumerate(blocked) if count
    )
    if summary["granted_mask"] != granted_mask:
        violations.append(Violation(
            "cache-granted-mask", rid, None,
            "cached {:#x} but rescanned {:#x}".format(
                summary["granted_mask"], granted_mask),
        ))
    if summary["blocked_mask"] != blocked_mask:
        violations.append(Violation(
            "cache-blocked-mask", rid, None,
            "cached {:#x} but rescanned {:#x}".format(
                summary["blocked_mask"], blocked_mask),
        ))

    av_cache = summary["av_cache"]
    if (
        av_cache is not None
        and av_cache[0] is state.total
        and av_cache[1] == len(state.queue)
    ):
        boundary = 0
        for entry in state.queue:
            if not compatible(state.total, entry.blocked):
                break
            boundary += 1
        if av_cache[2] != boundary:
            violations.append(Violation(
                "cache-av-prefix", rid, None,
                "cached boundary {} but rescanned {}".format(
                    av_cache[2], boundary),
            ))
    return violations


def assert_consistent(table: LockTable) -> None:
    """Raise :class:`InconsistentTableError` if any invariant fails."""
    violations = verify_table(table)
    if violations:
        raise InconsistentTableError(violations)
