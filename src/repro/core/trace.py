"""Step-by-step tracing of the periodic detection-resolution walk.

For debugging, teaching and regression-pinning the algorithm's exact
behavior, :func:`trace_detection` runs one periodic pass with an observer
attached and returns both the normal :class:`DetectionResult` and the
ordered list of walk events:

``root``         a new Step-2 walk starts at a transaction
``examine``      the walk looks at the current edge of a vertex
``descend``      the walk follows the edge (target joins the path)
``backtrack``    a vertex is exhausted; the walk pops to its ancestor
``cycle-found``  the current edge closes a cycle
``victim``       TDR candidates were costed and one chosen
``abort``        Step 3 confirms an abort
``spare``        Step 3 spares a tentative victim (Example 5.1's T3)

``format_trace`` renders the events as an indented text log; the test
suite pins the paper's Example 5.1 trace with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..lockmgr.lock_table import LockTable
from .detection import DetectionResult, _DetectionRun
from .victim import CostTable


@dataclass(frozen=True)
class TraceEvent:
    """One observed step: the event name and its payload."""

    event: str
    info: Tuple[Tuple[str, object], ...]

    def get(self, key: str, default=None):
        return dict(self.info).get(key, default)

    def __str__(self) -> str:
        payload = ", ".join(
            "{}={}".format(key, value) for key, value in self.info
        )
        return "{}({})".format(self.event, payload)


@dataclass
class Trace:
    """The full event sequence of one detection pass."""

    events: List[TraceEvent] = field(default_factory=list)

    def record(self, event: str, **info) -> None:
        self.events.append(
            TraceEvent(event=event, info=tuple(sorted(info.items())))
        )

    def of_kind(self, event: str) -> List[TraceEvent]:
        return [e for e in self.events if e.event == event]

    def cycles(self) -> List[List[int]]:
        """The cycles in detection order (from the ``victim`` events)."""
        return [list(e.get("cycle")) for e in self.of_kind("victim")]

    def __len__(self) -> int:
        return len(self.events)


def trace_detection(
    table: LockTable,
    costs: Optional[CostTable] = None,
    roots: Optional[List[int]] = None,
    allow_tdr2: bool = True,
) -> Tuple[DetectionResult, Trace]:
    """One periodic (or rooted) detection pass with full tracing."""
    trace = Trace()
    run = _DetectionRun(
        table,
        costs if costs is not None else CostTable(),
        roots=roots,
        allow_tdr2=allow_tdr2,
        observer=trace.record,
    )
    result = run.execute()
    return result, trace


_INDENTED = {"examine", "descend", "backtrack", "cycle-found"}


def format_trace(trace: Trace) -> str:
    """Render a trace as an indented, human-readable walk log."""
    lines: List[str] = []
    for event in trace.events:
        prefix = "  " if event.event in _INDENTED else ""
        if event.event == "root":
            lines.append("walk from T{}".format(event.get("tid")))
        elif event.event == "examine":
            target = event.get("target")
            lines.append(
                "{}T{} examines -{}-> {}".format(
                    prefix,
                    event.get("tid"),
                    event.get("label"),
                    "T{}".format(target) if target else "(end of queue)",
                )
            )
        elif event.event == "descend":
            lines.append(
                "{}descend T{} -> T{}".format(
                    prefix, event.get("tid"), event.get("target")
                )
            )
        elif event.event == "backtrack":
            parent = event.get("parent")
            lines.append(
                "{}backtrack from T{} to {}".format(
                    prefix,
                    event.get("tid"),
                    "T{}".format(parent) if parent > 0 else "(root done)",
                )
            )
        elif event.event == "cycle-found":
            lines.append(
                "{}CYCLE: edge T{} -> T{} closes the path".format(
                    prefix, event.get("tid"), event.get("closes")
                )
            )
        elif event.event == "victim":
            lines.append(
                "resolve cycle {} by: {}".format(
                    event.get("cycle"), event.get("chosen")
                )
            )
        elif event.event == "abort":
            lines.append("Step 3: abort T{}".format(event.get("tid")))
        elif event.event == "spare":
            lines.append(
                "Step 3: spare T{} (already granted)".format(event.get("tid"))
            )
        else:  # pragma: no cover - future event kinds
            lines.append(str(event))
    return "\n".join(lines)
