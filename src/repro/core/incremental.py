"""Incremental H/W-TWBG maintenance.

The paper keeps all W edges "present all the time" (the queues *are* the
W edges) and materializes H edges only while the periodic detector runs.
Its continuous companion [17] instead wants the whole graph current at
every block.  This module provides that: an :class:`IncrementalHWTWBG`
keeps one edge set per resource and refreshes exactly the resources an
operation touched — O(affected resource size) per update instead of a
full rebuild — while remaining bit-identical to a from-scratch
:func:`~repro.core.hw_twbg.build_graph` (a hypothesis property test pins
the equivalence on random operation sequences).

Wire it to a table manually::

    tracker = IncrementalHWTWBG(table)
    tracker.refresh("R1")          # after any operation touching R1
    tracker.graph().has_cycle()

or let :class:`~repro.lockmgr.manager.LockManager` drive it with
``LockManager(track_graph=True)``, which refreshes on every lock,
finish and detection pass and serves :meth:`LockManager.graph` from the
tracker.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..lockmgr.lock_table import LockTable
from .hw_twbg import Edge, HWTWBG, resource_edges


class IncrementalHWTWBG:
    """Per-resource edge cache over a live lock table."""

    def __init__(self, table: LockTable) -> None:
        self._table = table
        self._edges: Dict[str, List[Edge]] = {}
        self._members: Dict[str, Set[int]] = {}
        self.refresh_all()

    # -- maintenance ---------------------------------------------------------

    def refresh(self, rid: str) -> None:
        """Recompute the edges contributed by one resource (call after
        any scheduler operation that touched it)."""
        if rid not in self._table:
            self._edges.pop(rid, None)
            self._members.pop(rid, None)
            return
        state = self._table.existing(rid)
        self._edges[rid] = resource_edges(state)
        members = {holder.tid for holder in state.holders}
        members.update(waiter.tid for waiter in state.queue)
        self._members[rid] = members

    def refresh_many(self, rids: Iterable[str]) -> None:
        for rid in set(rids):
            self.refresh(rid)

    def refresh_all(self) -> None:
        """Full resynchronization (startup, or after a detection pass
        whose victims may have touched arbitrary resources)."""
        self._edges.clear()
        self._members.clear()
        for state in self._table.resources():
            self.refresh(state.rid)

    # -- queries --------------------------------------------------------------

    def graph(self) -> HWTWBG:
        """The current graph as a standard :class:`HWTWBG` view."""
        edges: List[Edge] = []
        vertices: Set[int] = set()
        for rid in self._edges:
            edges.extend(self._edges[rid])
            vertices.update(self._members[rid])
        return HWTWBG.from_edges(edges, vertices)

    def edges_of(self, rid: str) -> List[Edge]:
        """The cached edge list of one resource."""
        return list(self._edges.get(rid, ()))

    @property
    def resource_count(self) -> int:
        return len(self._edges)

    def __contains__(self, rid: str) -> bool:
        return rid in self._edges
