"""H/W-TWBG — the Holder/Waiter Transaction Waited-By Graph (Section 4).

Each vertex is a transaction; each edge ``Ti -> Tj`` means *the completion
of Ti is waited by Tj* and carries one of two labels:

* ``H`` — Ti is a holder of the resource Tj is waiting for;
* ``W`` — Ti is the waiter immediately ahead of Tj in the queue.

Edges are built by the three **Edge Construction Rules**:

ECR-1
    For two holder-list entries ``(Ti, gmi, bmi)`` preceding
    ``(Tj, gmj, bmj)``: add ``Ti -> Tj`` (H) if ``gmi`` or ``bmi``
    conflicts with ``bmj``; add ``Tj -> Ti`` (H) if ``gmj`` conflicts
    with ``bmi``.  (The ``bm``/``bm`` conflict only points from the
    earlier to the later entry — the UPR ordering decides who waits.)
ECR-2
    For each holder entry, add an H edge to the *first* queue request
    whose blocked mode conflicts with the holder's ``gm`` or ``bm``.
ECR-3
    Add a W edge between each pair of adjacent queue entries.

A **TRRP** (Transaction Resource Request Path) is one H edge plus its
trailing W edges — a partial picture of one resource's holder list and
queue.  The paper proves (Appendix, re-verified by this package's property
tests):

1. no cycle exists without an H edge;
2. no cycle consists of a single TRRP;
3. every cycle consists of at least two TRRPs;
4. H/W-TWBG has a cycle **iff** the system is deadlocked (Theorem 1).

This module offers the graph as an explicit, immutable-ish object for
analysis, tests and baselines.  The production detector
(:mod:`repro.core.detection`) uses the TST encoding instead; both are
built from the same rule functions here, so they cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .modes import CONFLICT_MASKS, LockMode
from .requests import ResourceState

#: Edge labels.
H_LABEL = "H"
W_LABEL = "W"


@dataclass(frozen=True)
class Edge:
    """A labeled edge ``source -> target`` ("target waits for source").

    ``rid`` names the resource that gave rise to the edge; ``lock`` is the
    paper's internal edge tag — the waiter's blocked mode on W edges,
    ``NL`` on H edges (Section 5's TST encoding derives the label from
    exactly this field).
    """

    source: int
    target: int
    label: str
    rid: str
    lock: LockMode = LockMode.NL

    def __str__(self) -> str:
        return "T{} -{}-> T{}".format(self.source, self.label, self.target)


def resource_edges(state: ResourceState) -> List[Edge]:
    """All H/W-TWBG edges contributed by one resource (ECR-1, 2, 3).

    The conflict tests run on precomputed bit masks: for each holder,
    ``conflict[i]`` has bit ``b`` set iff mode ``b`` conflicts with the
    holder's granted *or* blocked mode (``Comp`` is symmetric, so one
    mask serves both directions), turning every pairwise matrix probe
    into a shift-and-test.
    """
    edges: List[Edge] = []
    holders = state.holders
    rid = state.rid
    conflict = [
        CONFLICT_MASKS[holder.granted] | CONFLICT_MASKS[holder.blocked]
        for holder in holders
    ]

    # ECR-1: ordered holder pairs.
    for i, earlier in enumerate(holders):
        earlier_mask = conflict[i]
        for later in holders[i + 1 :]:
            if (
                later.blocked is not LockMode.NL
                and earlier_mask >> later.blocked & 1
            ):
                edges.append(Edge(earlier.tid, later.tid, H_LABEL, rid))
            if (
                earlier.blocked is not LockMode.NL
                and CONFLICT_MASKS[later.granted] >> earlier.blocked & 1
            ):
                edges.append(Edge(later.tid, earlier.tid, H_LABEL, rid))

    # ECR-2: holder -> first conflicting queue request.
    for i, holder in enumerate(holders):
        holder_mask = conflict[i]
        for waiter in state.queue:
            if holder_mask >> waiter.blocked & 1:
                edges.append(Edge(holder.tid, waiter.tid, H_LABEL, rid))
                break

    # ECR-3: adjacent queue pairs.
    for ahead, behind in zip(state.queue, state.queue[1:]):
        edges.append(
            Edge(ahead.tid, behind.tid, W_LABEL, rid, lock=ahead.blocked)
        )
    return edges


class HWTWBG:
    """An H/W-TWBG built from a collection of resource states.

    The graph is a plain adjacency structure with cycle and TRRP queries;
    it performs no resolution (see :mod:`repro.core.detection` for that).
    """

    def __init__(self, states: Iterable[ResourceState]) -> None:
        self._states: Dict[str, ResourceState] = {}
        self.edges: List[Edge] = []
        for state in states:
            self._states[state.rid] = state
            self.edges.extend(resource_edges(state))

        vertices: Set[int] = set()
        for state in self._states.values():
            for entry in state.holders:
                vertices.add(entry.tid)
            for entry in state.queue:
                vertices.add(entry.tid)
        self._index(vertices)

    def _index(self, vertices: Set[int]) -> None:
        self._succ: Dict[int, List[Edge]] = {}
        self._pred: Dict[int, List[Edge]] = {}
        self._vertices: Set[int] = set(vertices)
        for edge in self.edges:
            self._succ.setdefault(edge.source, []).append(edge)
            self._pred.setdefault(edge.target, []).append(edge)

    @classmethod
    def from_edges(
        cls, edges: Iterable[Edge], vertices: Iterable[int]
    ) -> "HWTWBG":
        """Build a graph view from pre-computed edges (used by the
        incremental maintainer, which keeps per-resource edge sets up to
        date itself)."""
        graph = cls([])
        graph.edges = list(edges)
        graph._index(set(vertices))
        return graph

    # -- plain graph queries ----------------------------------------------

    @property
    def vertices(self) -> Set[int]:
        """All transactions appearing in any holder list or queue."""
        return set(self._vertices)

    def successors(self, tid: int) -> List[Edge]:
        """Outgoing edges of ``tid`` (transactions that wait for it)."""
        return list(self._succ.get(tid, ()))

    def predecessors(self, tid: int) -> List[Edge]:
        """Incoming edges of ``tid`` (transactions it waits for)."""
        return list(self._pred.get(tid, ()))

    def edge_set(self) -> Set[Tuple[int, int, str]]:
        """``(source, target, label)`` triples — handy for figure tests."""
        return {(e.source, e.target, e.label) for e in self.edges}

    def has_edge(self, source: int, target: int, label: Optional[str] = None) -> bool:
        for edge in self._succ.get(source, ()):
            if edge.target == target and (label is None or edge.label == label):
                return True
        return False

    # -- cycles -------------------------------------------------------------

    def has_cycle(self) -> bool:
        """True iff the graph contains a directed cycle — by Theorem 1,
        iff the underlying system is deadlocked."""
        return self.find_cycle() is not None

    def find_cycle(self) -> Optional[List[int]]:
        """Some directed cycle as a vertex list (no repeated vertex), or
        ``None``.  Iterative 3-color DFS."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {v: WHITE for v in self._vertices}
        parent: Dict[int, int] = {}
        for root in sorted(self._vertices):
            if color[root] != WHITE:
                continue
            stack: List[Tuple[int, int]] = [(root, 0)]
            color[root] = GRAY
            while stack:
                vertex, index = stack[-1]
                out = self._succ.get(vertex, ())
                if index >= len(out):
                    color[vertex] = BLACK
                    stack.pop()
                    continue
                stack[-1] = (vertex, index + 1)
                child = out[index].target
                if color.get(child, BLACK) == GRAY:
                    cycle = [vertex]
                    walk = vertex
                    while walk != child:
                        walk = parent[walk]
                        cycle.append(walk)
                    cycle.reverse()
                    return cycle
                if color.get(child) == WHITE:
                    color[child] = GRAY
                    parent[child] = vertex
                    stack.append((child, 0))
        return None

    def elementary_cycles(self) -> List[List[int]]:
        """All elementary cycles (Johnson-style enumeration via the
        baseline implementation).  Exponential in general — analysis and
        tests only."""
        from ..baselines.johnson import elementary_circuits

        adjacency = {
            v: sorted({e.target for e in self._succ.get(v, ())})
            for v in self._vertices
        }
        return elementary_circuits(adjacency)

    # -- TRRP decomposition ---------------------------------------------------

    def cycle_edges(self, cycle: Sequence[int]) -> List[Edge]:
        """The edge objects along ``cycle`` (closing edge included).

        When parallel edges exist between two cycle vertices, an H edge is
        preferred — a cycle must enter each junction through its real
        waited-by relationship, and the detector's TST walk has the same
        preference built into its edge ordering.
        """
        chosen: List[Edge] = []
        length = len(cycle)
        for position, source in enumerate(cycle):
            target = cycle[(position + 1) % length]
            candidates = [
                e for e in self._succ.get(source, ()) if e.target == target
            ]
            if not candidates:
                raise ValueError(
                    "no edge T{} -> T{} in the graph".format(source, target)
                )
            candidates.sort(key=lambda e: e.label)  # 'H' < 'W'
            chosen.append(candidates[0])
        return chosen

    def trrps(self, cycle: Sequence[int]) -> List[List[int]]:
        """Split ``cycle`` into its TRRPs (each starts at an H edge).

        Returns vertex paths, e.g. Example 4.1's
        ``[[1, 2], [2, 5, 6, 7], [7, 8, 9, 3], [3, 1]]``.
        """
        edges = self.cycle_edges(cycle)
        h_positions = [i for i, e in enumerate(edges) if e.label == H_LABEL]
        if not h_positions:
            raise ValueError(
                "cycle without an H edge cannot exist (Lemma 1); got "
                "{!r}".format(list(cycle))
            )
        paths: List[List[int]] = []
        length = len(edges)
        for which, start in enumerate(h_positions):
            end = h_positions[(which + 1) % len(h_positions)]
            span = (end - start) % length or length
            path = [edges[start].source]
            for offset in range(span):
                path.append(edges[(start + offset) % length].target)
            paths.append(path)
        return paths

    def junctions(self, cycle: Sequence[int]) -> List[int]:
        """The TRRP junction transactions of ``cycle`` — the sources of
        its H edges.  These are exactly the TDR-1 victim candidates."""
        return [e.source for e in self.cycle_edges(cycle) if e.label == H_LABEL]

    # -- presentation ---------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz rendering (W edges dashed), for documentation."""
        lines = ["digraph hw_twbg {"]
        for vertex in sorted(self._vertices):
            lines.append('  T{0} [label="T{0}"];'.format(vertex))
        for edge in self.edges:
            style = ' style="dashed"' if edge.label == W_LABEL else ""
            lines.append(
                '  T{} -> T{} [label="{}/{}"{}];'.format(
                    edge.source, edge.target, edge.label, edge.rid, style
                )
            )
        lines.append("}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return "\n".join(str(edge) for edge in sorted(
            self.edges, key=lambda e: (e.source, e.target, e.label)
        ))


def build_graph(states: Iterable[ResourceState]) -> HWTWBG:
    """Build the H/W-TWBG of a set of resource states (or a whole
    :class:`~repro.lockmgr.lock_table.LockTable` via ``table.resources()``)."""
    return HWTWBG(states)
