"""Lock-table records: holder entries, queue entries and resource state.

The paper's lock table (Section 2) keeps, for every locked resource:

* a **holder list** — entries ``(tid, gm, bm)`` where ``gm`` is the granted
  mode and ``bm`` is the blocked (conversion) mode, ``NL`` when the holder
  is not waiting on a conversion;
* a **queue** — entries ``(tid, bm)`` of new requestors waiting FIFO;
* the **total mode** ``tm`` of the holders —
  ``Conv(...Conv(Conv(gm1, bm1), gm2)..., bmn)``.

These records are plain data plus consistency helpers; the scheduling
policy that mutates them according to Section 3 lives in
:mod:`repro.lockmgr.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from .errors import LockTableError
from .modes import LockMode, total_mode as _total_mode


@dataclass
class HolderEntry:
    """One member of a resource's holder list: ``(tid, gm, bm)``.

    ``blocked`` is ``NL`` while the holder is not waiting; when a lock
    conversion cannot be granted, ``blocked`` records the *target* mode
    ``Conv(gm, requested)`` the holder is waiting to reach.
    """

    tid: int
    granted: LockMode
    blocked: LockMode = LockMode.NL

    @property
    def is_blocked(self) -> bool:
        """True while this holder waits on a lock conversion."""
        return self.blocked is not LockMode.NL

    def copy(self) -> "HolderEntry":
        return HolderEntry(self.tid, self.granted, self.blocked)

    def __str__(self) -> str:
        return "({}, {}, {})".format(
            _tname(self.tid), self.granted.name, self.blocked.name
        )


@dataclass
class QueueEntry:
    """One member of a resource's queue: ``(tid, bm)``."""

    tid: int
    blocked: LockMode

    def copy(self) -> "QueueEntry":
        return QueueEntry(self.tid, self.blocked)

    def __str__(self) -> str:
        return "({}, {})".format(_tname(self.tid), self.blocked.name)


def _tname(tid: int) -> str:
    """Render a transaction id in the paper's ``T<i>`` style."""
    return "T{}".format(tid)


@dataclass
class ResourceState:
    """Complete lock-table entry for one resource.

    The ``total`` field caches the paper's total mode; it is maintained
    incrementally on grant/convert and recomputed from scratch whenever a
    holder leaves (the paper's Section 3 release procedure), because the
    conversion join is not invertible.
    """

    rid: str
    holders: List[HolderEntry] = field(default_factory=list)
    queue: List[QueueEntry] = field(default_factory=list)
    total: LockMode = LockMode.NL

    # -- lookups ---------------------------------------------------------

    def holder_entry(self, tid: int) -> Optional[HolderEntry]:
        """The holder entry of ``tid``, or ``None`` if not a holder."""
        for entry in self.holders:
            if entry.tid == tid:
                return entry
        return None

    def queue_entry(self, tid: int) -> Optional[QueueEntry]:
        """The queue entry of ``tid``, or ``None`` if not queued."""
        for entry in self.queue:
            if entry.tid == tid:
                return entry
        return None

    def queue_position(self, tid: int) -> int:
        """Index of ``tid`` in the queue, or -1."""
        for index, entry in enumerate(self.queue):
            if entry.tid == tid:
                return index
        return -1

    def is_held_by(self, tid: int) -> bool:
        return self.holder_entry(tid) is not None

    def blocked_holders(self) -> List[HolderEntry]:
        """Holders currently waiting on a conversion, in list order."""
        return [entry for entry in self.holders if entry.is_blocked]

    def unblocked_holders(self) -> List[HolderEntry]:
        """Holders not waiting, in list order."""
        return [entry for entry in self.holders if not entry.is_blocked]

    def waiting_tids(self) -> List[int]:
        """All transactions blocked at this resource (conversions first,
        then queue, each in list order)."""
        tids = [entry.tid for entry in self.blocked_holders()]
        tids.extend(entry.tid for entry in self.queue)
        return tids

    @property
    def is_free(self) -> bool:
        """True when no holder and no waiter remains."""
        return not self.holders and not self.queue

    # -- mutation helpers (total-mode maintenance) -----------------------

    def recompute_total(self) -> LockMode:
        """Recompute the total mode from the holder list (paper §3:
        done whenever a holder is deleted).  Queue entries do not
        contribute — the total mode summarizes *holders* only."""
        self.total = _total_mode(
            (entry.granted, entry.blocked) for entry in self.holders
        )
        return self.total

    def raise_total(self, mode: LockMode) -> None:
        """Join ``mode`` into the cached total mode (grant/convert path)."""
        from .modes import convert

        self.total = convert(self.total, mode)

    def remove_holder(self, tid: int) -> HolderEntry:
        """Delete ``tid`` from the holder list and recompute the total.

        Raises :class:`LockTableError` if ``tid`` is not a holder.
        """
        for index, entry in enumerate(self.holders):
            if entry.tid == tid:
                removed = self.holders.pop(index)
                self.recompute_total()
                return removed
        raise LockTableError(
            "transaction {} is not a holder of {}".format(tid, self.rid)
        )

    def remove_from_queue(self, tid: int) -> QueueEntry:
        """Delete ``tid`` from the queue.

        Raises :class:`LockTableError` if ``tid`` is not queued.
        """
        position = self.queue_position(tid)
        if position < 0:
            raise LockTableError(
                "transaction {} is not queued at {}".format(tid, self.rid)
            )
        return self.queue.pop(position)

    # -- presentation ----------------------------------------------------

    def copy(self) -> "ResourceState":
        """Deep copy (for snapshots taken by detectors and tests)."""
        return ResourceState(
            rid=self.rid,
            holders=[entry.copy() for entry in self.holders],
            queue=[entry.copy() for entry in self.queue],
            total=self.total,
        )

    def __str__(self) -> str:
        holders = " ".join(str(entry) for entry in self.holders)
        queue = " ".join(str(entry) for entry in self.queue)
        return "{}({}): Holder({}) Queue({})".format(
            self.rid, self.total.name, holders, queue
        )

    def __iter__(self) -> Iterator[HolderEntry]:
        return iter(self.holders)
