"""Lock-table records: holder entries, queue entries and resource state.

The paper's lock table (Section 2) keeps, for every locked resource:

* a **holder list** — entries ``(tid, gm, bm)`` where ``gm`` is the granted
  mode and ``bm`` is the blocked (conversion) mode, ``NL`` when the holder
  is not waiting on a conversion;
* a **queue** — entries ``(tid, bm)`` of new requestors waiting FIFO;
* the **total mode** ``tm`` of the holders —
  ``Conv(...Conv(Conv(gm1, bm1), gm2)..., bmn)``.

These records are plain data plus consistency helpers; the scheduling
policy that mutates them according to Section 3 lives in
:mod:`repro.lockmgr.scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from .errors import LockTableError
from .modes import (
    CONFLICT_MASKS,
    MODE_COUNT,
    SUP_OF_MASK,
    LockMode,
    compatible,
)


@dataclass
class HolderEntry:
    """One member of a resource's holder list: ``(tid, gm, bm)``.

    ``blocked`` is ``NL`` while the holder is not waiting; when a lock
    conversion cannot be granted, ``blocked`` records the *target* mode
    ``Conv(gm, requested)`` the holder is waiting to reach.
    """

    tid: int
    granted: LockMode
    blocked: LockMode = LockMode.NL

    @property
    def is_blocked(self) -> bool:
        """True while this holder waits on a lock conversion."""
        return self.blocked is not LockMode.NL

    def copy(self) -> "HolderEntry":
        return HolderEntry(self.tid, self.granted, self.blocked)

    def __str__(self) -> str:
        return "({}, {}, {})".format(
            _tname(self.tid), self.granted.name, self.blocked.name
        )


@dataclass
class QueueEntry:
    """One member of a resource's queue: ``(tid, bm)``."""

    tid: int
    blocked: LockMode

    def copy(self) -> "QueueEntry":
        return QueueEntry(self.tid, self.blocked)

    def __str__(self) -> str:
        return "({}, {})".format(_tname(self.tid), self.blocked.name)


def _tname(tid: int) -> str:
    """Render a transaction id in the paper's ``T<i>`` style."""
    return "T{}".format(tid)


@dataclass
class ResourceState:
    """Complete lock-table entry for one resource.

    The ``total`` field caches the paper's total mode.  Beyond it, the
    state memoizes three queue summaries so the scheduler's hot path is
    O(1) instead of a holder-list scan:

    * per-mode **counts** of granted and blocked holder modes, kept
      incrementally by the mutator methods below;
    * the **granted-group / blocked-group masks** (bit sets over the mode
      values) derived from the counts — one AND against a conflict mask
      answers "compatible with every other holder?", and
      ``SUP_OF_MASK[granted | blocked]`` *is* the total mode (the
      conversion fold equals the join of the set of modes present,
      because ``Conv`` is a lattice join);
    * the **AV-prefix boundary** — the leading run of queue entries
      compatible with the total mode (TDR-2's AV set) — cached lazily
      and keyed by ``(total, len(queue))``, so it survives unrelated
      mutations and self-invalidates on grants and repositionings.

    Mutation must go through the mutator methods (``add_holder``,
    ``set_holder_modes``, ``enqueue`` …).  Code that performs direct
    list surgery instead (the notation/serialize loaders, the baseline
    policies) must call :meth:`recompute_total`, which resynchronizes
    every summary from scratch — the long-standing convention for
    out-of-band edits, now load-bearing.  ``verify_table`` cross-checks
    all summaries against a rescan.
    """

    rid: str
    holders: List[HolderEntry] = field(default_factory=list)
    queue: List[QueueEntry] = field(default_factory=list)
    total: LockMode = LockMode.NL

    def __post_init__(self) -> None:
        # The summaries always describe ``holders``/``queue``; ``total``
        # is left exactly as passed (tests build deliberately
        # inconsistent totals to exercise the verifier).
        self._resync_summaries()

    # -- cached summaries -------------------------------------------------

    def _resync_summaries(self) -> None:
        """Rebuild every summary from the lists (O(holders))."""
        granted = [0] * MODE_COUNT
        blocked = [0] * MODE_COUNT
        granted_mask = 0
        blocked_mask = 0
        for entry in self.holders:
            granted[entry.granted] += 1
            granted_mask |= 1 << entry.granted
            if entry.blocked is not LockMode.NL:
                blocked[entry.blocked] += 1
                blocked_mask |= 1 << entry.blocked
        self._granted_counts = granted
        self._blocked_counts = blocked
        self._granted_mask = granted_mask
        self._blocked_mask = blocked_mask
        self._av_cache: Optional[Tuple[LockMode, int, int]] = None

    def _count_granted(self, mode: LockMode, delta: int) -> None:
        counts = self._granted_counts
        counts[mode] += delta
        if counts[mode]:
            self._granted_mask |= 1 << mode
        else:
            self._granted_mask &= ~(1 << mode)

    def _count_blocked(self, mode: LockMode, delta: int) -> None:
        if mode is LockMode.NL:
            return
        counts = self._blocked_counts
        counts[mode] += delta
        if counts[mode]:
            self._blocked_mask |= 1 << mode
        else:
            self._blocked_mask &= ~(1 << mode)

    def _refresh_total(self) -> None:
        """Recompute the total mode from the masks — O(1), exact (the
        join of the set of granted and blocked modes present)."""
        self.total = SUP_OF_MASK[self._granted_mask | self._blocked_mask]

    @property
    def granted_mask(self) -> int:
        """Bit set of the granted modes present in the holder list."""
        return self._granted_mask

    @property
    def blocked_mask(self) -> int:
        """Bit set of the blocked conversion modes present."""
        return self._blocked_mask

    def granted_mask_excluding(self, holder: HolderEntry) -> int:
        """The granted-group mask with ``holder``'s own contribution
        removed — the *other* holders' granted modes, O(1)."""
        mask = self._granted_mask
        if self._granted_counts[holder.granted] == 1:
            mask &= ~(1 << holder.granted)
        return mask

    def conversion_compatible(
        self, holder: HolderEntry, wanted: LockMode
    ) -> bool:
        """True when ``wanted`` is compatible with the granted mode of
        every holder other than ``holder`` (one AND)."""
        return not (
            CONFLICT_MASKS[wanted] & self.granted_mask_excluding(holder)
        )

    def av_prefix_length(self) -> int:
        """Length of the leading queue run compatible with the total
        mode (TDR-2's AV prefix), memoized until the total mode or the
        queue length changes; repositionings invalidate explicitly."""
        cache = self._av_cache
        if (
            cache is not None
            and cache[0] is self.total
            and cache[1] == len(self.queue)
        ):
            return cache[2]
        total = self.total
        boundary = 0
        for entry in self.queue:
            if not compatible(total, entry.blocked):
                break
            boundary += 1
        self._av_cache = (total, len(self.queue), boundary)
        return boundary

    def summary_snapshot(self) -> dict:
        """The raw cached summaries (for the verifier and debugging)."""
        return {
            "granted_counts": tuple(self._granted_counts),
            "blocked_counts": tuple(self._blocked_counts),
            "granted_mask": self._granted_mask,
            "blocked_mask": self._blocked_mask,
            "av_cache": self._av_cache,
        }

    # -- lookups ---------------------------------------------------------

    def holder_entry(self, tid: int) -> Optional[HolderEntry]:
        """The holder entry of ``tid``, or ``None`` if not a holder."""
        for entry in self.holders:
            if entry.tid == tid:
                return entry
        return None

    def queue_entry(self, tid: int) -> Optional[QueueEntry]:
        """The queue entry of ``tid``, or ``None`` if not queued."""
        for entry in self.queue:
            if entry.tid == tid:
                return entry
        return None

    def queue_position(self, tid: int) -> int:
        """Index of ``tid`` in the queue, or -1."""
        for index, entry in enumerate(self.queue):
            if entry.tid == tid:
                return index
        return -1

    def is_held_by(self, tid: int) -> bool:
        return self.holder_entry(tid) is not None

    def blocked_holders(self) -> List[HolderEntry]:
        """Holders currently waiting on a conversion, in list order."""
        return [entry for entry in self.holders if entry.is_blocked]

    def unblocked_holders(self) -> List[HolderEntry]:
        """Holders not waiting, in list order."""
        return [entry for entry in self.holders if not entry.is_blocked]

    def waiting_tids(self) -> List[int]:
        """All transactions blocked at this resource (conversions first,
        then queue, each in list order)."""
        tids = [entry.tid for entry in self.blocked_holders()]
        tids.extend(entry.tid for entry in self.queue)
        return tids

    @property
    def is_free(self) -> bool:
        """True when no holder and no waiter remains."""
        return not self.holders and not self.queue

    # -- mutation helpers (summary maintenance) --------------------------

    def recompute_total(self) -> LockMode:
        """Resynchronize every cached summary from the lists and return
        the recomputed total mode (paper §3 names this for holder
        deletion; it is also the mandatory resync after direct list
        surgery).  Queue entries do not contribute — the total mode
        summarizes *holders* only."""
        self._resync_summaries()
        self._refresh_total()
        return self.total

    def raise_total(self, mode: LockMode) -> None:
        """Join ``mode`` into the cached total mode (manual maintenance
        for callers doing their own surgery; the mutators below keep the
        total fresh on their own)."""
        from .modes import convert

        self.total = convert(self.total, mode)

    def add_holder(self, entry: HolderEntry, index: Optional[int] = None) -> None:
        """Insert ``entry`` into the holder list (append when ``index``
        is ``None``), updating counts, masks and the total mode."""
        if index is None:
            self.holders.append(entry)
        else:
            self.holders.insert(index, entry)
        self._count_granted(entry.granted, +1)
        self._count_blocked(entry.blocked, +1)
        self._refresh_total()

    def set_holder_modes(
        self,
        entry: HolderEntry,
        granted: Optional[LockMode] = None,
        blocked: Optional[LockMode] = None,
    ) -> None:
        """Change a holder's granted and/or blocked mode through the
        summaries (grant-conversion, block-conversion and the sweep's
        ``bm -> gm`` swap all come through here)."""
        if granted is not None and granted is not entry.granted:
            self._count_granted(entry.granted, -1)
            entry.granted = granted
            self._count_granted(granted, +1)
        if blocked is not None and blocked is not entry.blocked:
            self._count_blocked(entry.blocked, -1)
            entry.blocked = blocked
            self._count_blocked(blocked, +1)
        self._refresh_total()

    def move_holder(self, entry: HolderEntry, index: int) -> None:
        """Reposition ``entry`` within the holder list (UPR surgery);
        membership is unchanged, so every summary stays valid."""
        self.holders.remove(entry)
        self.holders.insert(index, entry)

    def remove_holder(self, tid: int) -> HolderEntry:
        """Delete ``tid`` from the holder list and refresh the total
        from the counts — O(1), no holder-list rescan.

        Raises :class:`LockTableError` if ``tid`` is not a holder.
        """
        for index, entry in enumerate(self.holders):
            if entry.tid == tid:
                removed = self.holders.pop(index)
                self._count_granted(removed.granted, -1)
                self._count_blocked(removed.blocked, -1)
                self._refresh_total()
                return removed
        raise LockTableError(
            "transaction {} is not a holder of {}".format(tid, self.rid)
        )

    def enqueue(self, entry: QueueEntry) -> None:
        """Append ``entry`` to the FIFO queue."""
        self.queue.append(entry)
        self._av_cache = None

    def popleft_queue(self) -> QueueEntry:
        """Remove and return the queue's front entry (grant path)."""
        entry = self.queue.pop(0)
        self._av_cache = None
        return entry

    def set_queue_order(self, entries: List[QueueEntry]) -> None:
        """Replace the queue with a reordering of itself (TDR-2's
        repositioning) and drop the AV-prefix memo — same length and
        total, so the keyed cache cannot see the change on its own."""
        self.queue = list(entries)
        self._av_cache = None

    def remove_from_queue(self, tid: int) -> QueueEntry:
        """Delete ``tid`` from the queue.

        Raises :class:`LockTableError` if ``tid`` is not queued.
        """
        position = self.queue_position(tid)
        if position < 0:
            raise LockTableError(
                "transaction {} is not queued at {}".format(tid, self.rid)
            )
        entry = self.queue.pop(position)
        self._av_cache = None
        return entry

    # -- presentation ----------------------------------------------------

    def copy(self) -> "ResourceState":
        """Deep copy (for snapshots taken by detectors and tests)."""
        return ResourceState(
            rid=self.rid,
            holders=[entry.copy() for entry in self.holders],
            queue=[entry.copy() for entry in self.queue],
            total=self.total,
        )

    def __str__(self) -> str:
        holders = " ".join(str(entry) for entry in self.holders)
        queue = " ".join(str(entry) for entry in self.queue)
        return "{}({}): Holder({}) Queue({})".format(
            self.rid, self.total.name, holders, queue
        )

    def __iter__(self) -> Iterator[HolderEntry]:
        return iter(self.holders)
